"""Tests for SOT encoding, region decoding, and stitching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CodecConfig
from repro.errors import CodecError
from repro.geometry import Rectangle
from repro.tiles.layout import TileLayout, VideoLayoutSpec, uniform_layout, untiled_layout
from repro.video.codec import EncodeStats
from repro.video.decoder import RegionRequest, VideoDecoder
from repro.video.encoder import VideoEncoder
from repro.video.quality import psnr
from repro.video.stitching import stitch_tiles


@pytest.fixture
def encoder(codec_config: CodecConfig) -> VideoEncoder:
    return VideoEncoder(codec_config)


@pytest.fixture
def decoder(codec_config: CodecConfig) -> VideoDecoder:
    return VideoDecoder(codec_config)


class TestVideoEncoder:
    def test_sot_structure(self, encoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 10, layout)
        assert sot.frame_count == 10
        assert len(sot.gops) == 2  # 10 frames / 5-frame GOPs
        assert all(gop.tile_count == 4 for gop in sot.gops)
        assert sot.keyframe_count == 2
        assert sot.size_bytes > 0
        assert sot.encode_seconds > 0

    def test_gop_containing(self, encoder, tiny_video):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        sot = encoder.encode_sot(tiny_video, 0, 0, 10, layout)
        assert sot.gop_containing(3).frame_start == 0
        assert sot.gop_containing(7).frame_start == 5
        with pytest.raises(CodecError):
            sot.gop_containing(10)

    def test_layout_dimension_mismatch_rejected(self, encoder, tiny_video):
        wrong = untiled_layout(tiny_video.width + 8, tiny_video.height)
        with pytest.raises(CodecError):
            encoder.encode_sot(tiny_video, 0, 0, 5, wrong)

    def test_empty_range_rejected(self, encoder, tiny_video):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        with pytest.raises(CodecError):
            encoder.encode_sot(tiny_video, 0, 5, 5, layout)

    def test_encode_video_with_spec(self, encoder, tiny_video, codec_config):
        spec = VideoLayoutSpec(
            frame_width=tiny_video.width,
            frame_height=tiny_video.height,
            frame_count=tiny_video.frame_count,
            sot_frames=codec_config.gop_frames,
        )
        spec.set_layout(1, uniform_layout(tiny_video.width, tiny_video.height, 2, 2))
        stats = EncodeStats()
        sots = encoder.encode_video(tiny_video, spec, stats=stats)
        assert len(sots) == spec.sot_count
        assert sots[0].layout.is_untiled
        assert sots[1].layout.tile_count == 4
        assert stats.pixels_encoded == tiny_video.width * tiny_video.height * tiny_video.frame_count

    def test_more_keyframes_means_more_bytes(self, tiny_video):
        short_gop = VideoEncoder(CodecConfig(gop_frames=3, frame_rate=5, block_size=8,
                                             min_tile_width=16, min_tile_height=16))
        long_gop = VideoEncoder(CodecConfig(gop_frames=15, frame_rate=5, block_size=8,
                                            min_tile_width=16, min_tile_height=16))
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        short_size = short_gop.encode_sot(tiny_video, 0, 0, 15, layout).size_bytes
        long_size = long_gop.encode_sot(tiny_video, 0, 0, 15, layout).size_bytes
        assert short_size > long_size


class TestVideoDecoder:
    def test_region_pixels_match_source(self, encoder, decoder, tiny_video, codec_config):
        """Decoded region pixels equal the original within quantisation error."""
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 10, layout)
        region = Rectangle(8, 40, 48, 64)
        result = decoder.decode_regions(sot, [RegionRequest(frame_index=4, region=region)])
        assert len(result.regions) == 1
        decoded = result.regions[0].pixels
        original = tiny_video.frame(4).crop(region)
        assert decoded.shape == original.shape
        assert psnr(original, decoded) > 28.0

    def test_only_intersecting_tiles_are_decoded(self, encoder, decoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        # A small region in the top-left tile only.
        result = decoder.decode_regions(sot, [RegionRequest(0, Rectangle(0, 0, 10, 10))])
        assert result.stats.tiles_decoded == 1
        tile_area = layout.tile_rectangle(0, 0).area
        assert result.stats.pixels_decoded == tile_area  # keyframe only

    def test_temporal_dependency_costs_pixels(self, encoder, decoder, tiny_video):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        frame_pixels = tiny_video.width * tiny_video.height
        early = decoder.decode_regions(sot, [RegionRequest(0, Rectangle(0, 0, 16, 16))])
        late = decoder.decode_regions(sot, [RegionRequest(4, Rectangle(0, 0, 16, 16))])
        # Reaching frame 4 requires decoding frames 0..4 of the tile.
        assert early.stats.pixels_decoded == frame_pixels
        assert late.stats.pixels_decoded == frame_pixels * 5

    def test_shared_tile_decoded_once_per_gop(self, encoder, decoder, tiny_video):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        requests = [
            RegionRequest(2, Rectangle(0, 0, 16, 16)),
            RegionRequest(4, Rectangle(32, 32, 48, 48)),
        ]
        result = decoder.decode_regions(sot, requests)
        assert result.stats.tiles_decoded == 1
        assert len(result.regions) == 2

    def test_requests_outside_sot_ignored(self, encoder, decoder, tiny_video):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        result = decoder.decode_regions(sot, [RegionRequest(12, Rectangle(0, 0, 8, 8))])
        assert result.regions == []
        assert result.stats.pixels_decoded == 0

    def test_decode_full_frames(self, encoder, decoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 3, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        result = decoder.decode_full_frames(sot, [2])
        assert result.stats.tiles_decoded == layout.tile_count
        frame = result.regions[0].pixels
        assert frame.shape == (tiny_video.height, tiny_video.width)

    def test_region_spanning_multiple_tiles_is_assembled(self, encoder, decoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        # A region crossing all four tiles.
        center = Rectangle(tiny_video.width // 2 - 16, tiny_video.height // 2 - 16,
                           tiny_video.width // 2 + 16, tiny_video.height // 2 + 16)
        result = decoder.decode_regions(sot, [RegionRequest(1, center)])
        assert result.stats.tiles_decoded == 4
        original = tiny_video.frame(1).crop(center)
        assert psnr(original, result.regions[0].pixels) > 25.0


class TestStitching:
    def test_stitched_frames_cover_whole_frame(self, encoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 10, layout)
        stitched = stitch_tiles(sot, codec_config)
        assert len(stitched.frames) == 10
        assert stitched.frames[0].pixels.shape == (tiny_video.height, tiny_video.width)
        assert stitched.stats.tiles_decoded == 4 * 2  # 4 tiles x 2 GOPs

    def test_stitching_preserves_quality(self, encoder, tiny_video, codec_config):
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, codec_config.block_size)
        sot = encoder.encode_sot(tiny_video, 0, 0, 10, layout)
        stitched = stitch_tiles(sot, codec_config)
        values = [
            psnr(tiny_video.frame(frame.index).pixels, frame.pixels)
            for frame in stitched.frames
        ]
        assert float(np.mean(values)) > 28.0

    def test_frame_at_lookup(self, encoder, tiny_video, codec_config):
        layout = untiled_layout(tiny_video.width, tiny_video.height)
        sot = encoder.encode_sot(tiny_video, 0, 0, 5, layout)
        stitched = stitch_tiles(sot, codec_config)
        assert stitched.frame_at(3).index == 3
        with pytest.raises(CodecError):
            stitched.frame_at(99)
