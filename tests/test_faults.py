"""Fault injection and recovery: the chaos suite.

The contracts pinned here, layer by layer:

* the :class:`~repro.faults.FaultPlan` itself is deterministic — for a fixed
  seed every site's fire-decision sequence is a pure function of its
  evaluation ordinal, so a chaos run can reconcile what fired against what
  the recovery machinery reports;
* **deadlines** fail a query with :class:`~repro.errors.DeadlineExceeded`
  whether it expires while pending (never costing a batch slot) or mid-batch
  (the executor's cancelled-probe stops its remaining decode);
* **load shedding** fast-fails with :class:`~repro.errors.ServerBusy` above
  the depth bound, and the queue-wait breaker sheds the lowest-priority,
  newest pending queries first;
* **runner supervision** restarts crashed batch runners, requeues their
  unaffected queries with served SOTs skipped (results byte-identical), and
  quarantines a query that keeps killing runners with
  :class:`~repro.errors.PoisonQueryError`;
* **retry/reconnect**: a :class:`~repro.service.RetryPolicy` client survives
  a dropped or mid-frame-cut connection, resuming in-flight scans from the
  last delivered chunk — byte-identical to an uninterrupted run — and
  ``close()`` concurrent with an in-flight reconnect is clean (no leaked
  reader, idempotent);
* a transient decode fault fails only the offending execution: a multi-query
  batch retries its untouched members individually;
* the hello handshake is bounded: an idle peer is cut loose and counted;
* timeout errors say which stage starved (queue vs execute vs wire);
* with no plan configured every injection hook resolves to ``None`` — the
  production path carries no chaos machinery;
* and the seeded **chaos workload**: mixed queries under a multi-point plan
  never hang, never deliver wrong bytes, always terminate in a known state,
  and the recovery metrics account for every injected fault.
"""

from __future__ import annotations

import socket
import threading
import time
import warnings

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.query import Query
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    PoisonQueryError,
    ServerBusy,
    ServiceError,
)
from repro.faults import (
    FAULT_CONSUMER_SKEW,
    FAULT_DECODE_ERROR,
    FAULT_RUNNER_DEATH,
    FAULT_SHM_ATTACH,
    FAULT_TRANSPORT_CUT,
    FAULT_TRANSPORT_DELAY,
    FAULT_TRANSPORT_DROP,
    FaultPlan,
    FaultSite,
    FaultSpec,
)
from repro.service import (
    BatchScheduler,
    RemoteTasmClient,
    RetryPolicy,
    ShmTransport,
    SocketTransport,
)
from repro.service.shedding import QueueWaitBreaker, percentile_from_buckets
from tests.test_exec_engine import assert_scan_results_identical, make_tasm
from tests.test_service_flow_control import make_server, only_connection, wait_until

LABELS = ["car", "person", "sign"]


def gate_decoder(tasm, gate: threading.Event, hold_call: int = 1):
    """Instrument the decoder so prefetch call ``hold_call`` parks on ``gate``.

    Returns the call-count list and the original so callers can restore it.
    """
    calls: list = []
    original = tasm._decoder.prefetch_regions

    def instrumented(sot, requests, scope):
        calls.append(scope)
        if len(calls) == hold_call:
            gate.wait(timeout=30)
        return original(sot, requests, scope)

    tasm._decoder.prefetch_regions = instrumented
    return calls, original


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_decision_sequence(self):
        spec = FaultSpec(FAULT_TRANSPORT_DROP, probability=0.5)
        first = [FaultSite(spec, seed=7).should_fire() for _ in range(1)]
        a = FaultSite(spec, seed=7)
        b = FaultSite(spec, seed=7)
        assert [a.should_fire() for _ in range(200)] == [
            b.should_fire() for _ in range(200)
        ]
        assert a.fires == b.fires
        del first

    def test_sites_are_seeded_per_point(self):
        plan = FaultPlan(
            [
                FaultSpec(FAULT_TRANSPORT_DROP, probability=0.5),
                FaultSpec(FAULT_RUNNER_DEATH, probability=0.5),
            ],
            seed=7,
        )
        drop = plan.site(FAULT_TRANSPORT_DROP)
        death = plan.site(FAULT_RUNNER_DEATH)
        drops = [drop.should_fire() for _ in range(200)]
        deaths = [death.should_fire() for _ in range(200)]
        assert drops != deaths, "per-point RNG streams must be independent"
        assert plan.fires() == {
            FAULT_TRANSPORT_DROP: sum(drops),
            FAULT_RUNNER_DEATH: sum(deaths),
        }
        assert plan.total_fires() == sum(drops) + sum(deaths)

    def test_skip_first_and_max_fires(self):
        site = FaultSite(
            FaultSpec(FAULT_DECODE_ERROR, probability=1.0, skip_first=3, max_fires=2),
            seed=0,
        )
        decisions = [site.should_fire() for _ in range(10)]
        assert decisions == [False, False, False, True, True] + [False] * 5
        assert site.fires == 2
        assert site.evaluations == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("transport.not-a-point")
        with pytest.raises(ConfigurationError):
            FaultSpec(FAULT_TRANSPORT_DROP, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(FAULT_TRANSPORT_DROP, max_fires=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan(
                [FaultSpec(FAULT_TRANSPORT_DROP), FaultSpec(FAULT_TRANSPORT_DROP)]
            )

    def test_unplanned_point_resolves_to_none(self):
        plan = FaultPlan([FaultSpec(FAULT_TRANSPORT_DROP)])
        assert plan.site(FAULT_RUNNER_DEATH) is None


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_fails_query_while_runner_is_busy(self, config):
        """A 50 ms deadline behind a held runner: whether it expires pending
        or at the mid-batch probe, the waiter gets DeadlineExceeded."""
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=1)
        try:
            blocker = server.submit(Query.select("car", video.name))
            assert wait_until(lambda: len(calls) >= 1), "first batch never started"
            doomed = server.submit(
                Query.select("person", video.name), deadline_ms=50.0
            )
            time.sleep(0.1)  # let the deadline lapse while the runner is held
            gate.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30)
            blocker.result(timeout=30)
            assert server._scheduler.queries_deadline_exceeded >= 1
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            server.stop()

    def test_mid_batch_deadline_skips_remaining_decode(self, config):
        """Expire a query between its SOTs: the cancelled-probe fails it and
        the third SOT is never prefetched."""
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=2)
        try:
            stream = server.submit(
                Query.select("car", video.name), deadline_ms=300.0
            )
            assert wait_until(lambda: len(calls) >= 2), "the batch never started"
            assert wait_until(stream.expired, timeout=5.0)
            gate.set()
            with pytest.raises(DeadlineExceeded):
                stream.result(timeout=30)
            # "car" spans 3 SOTs; the post-deadline one was skipped.
            assert wait_until(lambda: server._scheduler.batches_executed >= 1)
            assert len(calls) == 2
            assert server._scheduler.queries_deadline_exceeded == 1
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            server.stop()

    def test_deadline_travels_the_wire_typed(self, config):
        """A remote scan's deadline failure arrives as DeadlineExceeded, not
        a bare ServiceError — the wire carries the error code."""
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=1)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False
            ) as client:
                blocker = client.scan_streaming(video.name, "car")
                assert wait_until(lambda: len(calls) >= 1)
                doomed = client.scan_streaming(
                    video.name, "person", deadline_ms=50.0
                )
                time.sleep(0.1)
                gate.set()
                with pytest.raises(DeadlineExceeded):
                    doomed.result()
                blocker.result()
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
class _TrippedBreaker:
    last_percentile = 0.25

    def should_shed(self) -> bool:
        return True


class TestLoadShedding:
    def test_depth_bound_fast_fails(self, config):
        """Above ``service_max_queue_depth`` pending, submit refuses with
        SERVER_BUSY before allocating a stream."""
        tasm, video = make_tasm(config)
        scheduler = BatchScheduler(tasm, window_ms=0.0, max_batch=4, max_queue_depth=2)
        scheduler._running = True  # driven without threads: pending stays put
        scheduler.submit(Query.select("car", video.name))
        scheduler.submit(Query.select("person", video.name))
        with pytest.raises(ServerBusy, match="SERVER_BUSY"):
            scheduler.submit(Query.select("sign", video.name))
        assert scheduler.queries_shed == 1
        assert scheduler.queue_depth == 2, "the refused query never queued"

    def test_breaker_sheds_lowest_priority_newest_first(self, config):
        """A tripped breaker halves the backlog, failing the cheapest
        promises: lowest priority first, newest first within a priority."""
        tasm, video = make_tasm(config)
        scheduler = BatchScheduler(tasm, window_ms=0.0, max_batch=4)
        scheduler._running = True
        scheduler._breaker = _TrippedBreaker()
        keep_high = scheduler.submit(Query.select("car", video.name), priority=2)
        shed_old = scheduler.submit(Query.select("person", video.name), priority=0)
        shed_new = scheduler.submit(Query.select("sign", video.name), priority=0)
        keep_mid = scheduler.submit(Query.select("car", video.name), priority=1)
        scheduler._shed_if_overloaded()
        for victim in (shed_old, shed_new):
            with pytest.raises(ServerBusy, match="queue-wait breaker"):
                victim.result(timeout=1.0)
        assert not keep_high.done and not keep_mid.done
        assert scheduler.queries_shed == 2
        assert scheduler.queue_depth == 2

    def test_breaker_windows_and_threshold(self):
        """The breaker diffs cumulative snapshots: only the recent window's
        p95 matters, and short windows accumulate instead of evaluating."""
        bounds = [0.001, 0.01, 0.1]
        snapshots = []

        def snap(counts):
            cumulative, running = [], 0
            for bound, n in zip([*bounds, "+Inf"], counts):
                running += n
                cumulative.append((bound, running))
            return {"count": running, "sum": 0.0, "buckets": cumulative}

        def read():
            return snapshots.pop(0)

        breaker = QueueWaitBreaker(read, threshold_seconds=0.01, min_samples=8)
        snapshots.append(snap([100, 0, 0, 0]))  # baseline: history is fast
        assert breaker.should_shed() is False
        # Four slow waits: below min_samples, the window keeps accumulating.
        snapshots.append(snap([100, 0, 4, 0]))
        assert breaker.should_shed() is False
        # Eight more: the 12-sample window is all in the 0.1 s bucket.
        snapshots.append(snap([100, 0, 12, 0]))
        assert breaker.should_shed() is True
        assert breaker.last_percentile == pytest.approx(0.1)
        assert breaker.trips == 1
        # The next window is fast again: the breaker resets — a past overload
        # cannot keep shedding after the queue drains.
        snapshots.append(snap([120, 0, 12, 0]))
        assert breaker.should_shed() is False

    def test_percentile_from_buckets_edges(self):
        assert percentile_from_buckets([], 0, 0.95) == 0.0
        buckets = [(0.01, 0), ("+Inf", 10)]
        assert percentile_from_buckets(buckets, 10, 0.95) == float("inf")
        buckets = [(0.01, 10), ("+Inf", 10)]
        assert percentile_from_buckets(buckets, 10, 0.95) == 0.01


# ----------------------------------------------------------------------
# Runner supervision
# ----------------------------------------------------------------------
class TestRunnerSupervision:
    def test_injected_death_is_survived(self, config):
        """A runner killed at batch entry is restarted and the query
        completes byte-identical — the waiter never learns anything broke."""
        plan = FaultPlan([FaultSpec(FAULT_RUNNER_DEATH, max_fires=1)], seed=3)
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        try:
            result = server.submit(Query.select("car", video.name)).result(timeout=30)
            assert_scan_results_identical(result, reference.scan(video.name, "car"))
            assert wait_until(lambda: server._scheduler.runner_restarts == 1)
            assert plan.fires()[FAULT_RUNNER_DEATH] == 1
        finally:
            server.stop()

    def test_mid_stream_death_resumes_byte_identical(self, config):
        """Kill the runner *after* it served a SOT: the requeued query skips
        the delivered chunk and the spliced result is byte-identical."""
        # skip_first=1 passes the batch-entry evaluation; the next
        # evaluation is the observer hook after the first served chunk.
        plan = FaultPlan(
            [FaultSpec(FAULT_RUNNER_DEATH, skip_first=1, max_fires=1)], seed=3
        )
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        try:
            result = server.submit(Query.select("car", video.name)).result(timeout=30)
            assert_scan_results_identical(result, reference.scan(video.name, "car"))
            assert wait_until(lambda: server._scheduler.runner_restarts == 1)
        finally:
            server.stop()

    def test_poison_query_is_quarantined(self, config):
        """A query that kills every runner it touches is quarantined after
        ``service_poison_query_kills`` deaths instead of looping forever."""
        plan = FaultPlan([FaultSpec(FAULT_RUNNER_DEATH, probability=1.0)], seed=3)
        server, video = make_server(
            config, fault_plan=plan, service_poison_query_kills=2
        )
        try:
            stream = server.submit(Query.select("car", video.name))
            with pytest.raises(PoisonQueryError):
                stream.result(timeout=30)
            scheduler = server._scheduler
            assert scheduler.queries_quarantined == 1
            assert wait_until(lambda: scheduler.runner_restarts >= 2)
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Decoder faults
# ----------------------------------------------------------------------
class TestDecodeFaults:
    def test_decode_fault_fails_only_that_execution(self, config):
        """A solo query hit by a decoder fault fails with the decoder's
        message; the pool survives and the next scan is served normally."""
        plan = FaultPlan([FaultSpec(FAULT_DECODE_ERROR, max_fires=1)], seed=5)
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        try:
            with pytest.raises(ServiceError, match="injected decoder fault"):
                server.submit(Query.select("car", video.name)).result(timeout=30)
            result = server.submit(Query.select("car", video.name)).result(timeout=30)
            assert_scan_results_identical(result, reference.scan(video.name, "car"))
        finally:
            server.stop()

    def test_transient_decode_fault_in_batch_is_absorbed(self, config):
        """A batch hit by a transient decoder fault retries its untouched
        queries individually — both complete byte-identical."""
        plan = FaultPlan([FaultSpec(FAULT_DECODE_ERROR, max_fires=1)], seed=5)
        server, video = make_server(
            config, fault_plan=plan, service_batch_window_ms=50.0, service_runners=1
        )
        reference, _ = make_tasm(config)
        try:
            first = server.submit(Query.select("car", video.name))
            second = server.submit(Query.select("person", video.name))
            assert_scan_results_identical(
                first.result(timeout=30), reference.scan(video.name, "car")
            )
            assert_scan_results_identical(
                second.result(timeout=30), reference.scan(video.name, "person")
            )
            assert plan.fires()[FAULT_DECODE_ERROR] == 1
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Client retry / reconnect
# ----------------------------------------------------------------------
RETRY = RetryPolicy(attempts=6, base_delay=0.02, max_delay=0.2, seed=11)


class TestRetryReconnect:
    def test_dropped_connection_resumes_byte_identical(self, config):
        """Kill the wire after the first chunk: the client reconnects,
        resumes with skip_sots, and the result is byte-identical."""
        # Writer frames: hello reply (1), chunk SOT0 (2), chunk SOT1 (3).
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=2, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False, retry=RETRY
            ) as client:
                result = client.scan(video.name, "car")
                assert_scan_results_identical(
                    result, reference.scan(video.name, "car")
                )
                assert client.retries_total == 1
                assert plan.fires()[FAULT_TRANSPORT_DROP] == 1
                assert server._scheduler.scan_resumes >= 1
        finally:
            transport.stop()
            server.stop()

    def test_mid_frame_cut_resumes_byte_identical(self, config):
        """A connection cut *inside* a frame (truncated payload) is a
        TransportError, not a clean EOF — and equally survivable."""
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_CUT, skip_first=2, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False, retry=RETRY
            ) as client:
                assert_scan_results_identical(
                    client.scan(video.name, "car"),
                    reference.scan(video.name, "car"),
                )
                assert client.retries_total == 1
        finally:
            transport.stop()
            server.stop()

    def test_without_retry_policy_the_failure_surfaces(self, config):
        """The same drop with no RetryPolicy: the scan fails — reconnection
        is opt-in, not silent behaviour."""
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=1, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False
            ) as client:
                with pytest.raises(ServiceError):
                    client.scan(video.name, "car")
                assert client.retries_total == 0
        finally:
            transport.stop()
            server.stop()

    def test_reconnect_gives_up_when_the_server_is_gone(self, config):
        """Attempts exhausted against a dead listener: outstanding scans fail
        instead of retrying forever."""
        server, video = make_server(config)
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=1)
        transport = SocketTransport(server).start()
        client = RemoteTasmClient(
            transport.address,
            timeout=10.0,
            use_shm=False,
            retry=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.05, seed=1),
        )
        try:
            stream = client.scan_streaming(video.name, "car")
            assert wait_until(lambda: len(calls) >= 1)
            transport.stop()  # kills the connection and the listener
            gate.set()
            with pytest.raises(ServiceError):
                stream.result()
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            client.close()
            transport.stop()
            server.stop()

    def test_close_concurrent_with_inflight_reconnect(self, config):
        """close() while the reader is mid-backoff: returns promptly, the
        reader exits (no leak warning), and a second close is a no-op."""
        # Every post-hello frame kills the connection — including each
        # reconnect's hello reply, so the reader loops in backoff forever.
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=1)], seed=17
        )
        server, video = make_server(config, fault_plan=plan)
        transport = SocketTransport(server).start()
        client = RemoteTasmClient(
            transport.address,
            timeout=5.0,
            use_shm=False,
            retry=RetryPolicy(attempts=50, base_delay=0.05, max_delay=0.1, seed=1),
        )
        try:
            stream = client.scan_streaming(video.name, "car")
            time.sleep(0.3)  # let the drop fire and the reconnect loop spin
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                started = time.monotonic()
                client.close()
                assert time.monotonic() - started < 3.0
                client.close()  # idempotent
            leaks = [w for w in caught if "reader thread" in str(w.message)]
            assert not leaks, f"reader leaked through close: {leaks}"
            assert not client._reader.is_alive()
            with pytest.raises(ServiceError):
                stream.result()
        finally:
            client.close()
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Shared-memory attach faults
# ----------------------------------------------------------------------
class TestShmAttachFault:
    def test_attach_failure_falls_back_to_socket(self, config):
        plan = FaultPlan([FaultSpec(FAULT_SHM_ATTACH, max_fires=1)], seed=19)
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = ShmTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=True, fault_plan=plan
            ) as client:
                assert client.shm_active is False
                assert_scan_results_identical(
                    client.scan(video.name, "car"),
                    reference.scan(video.name, "car"),
                )
                assert client.socket_chunks_received > 0
                assert client.shm_chunks_received == 0
        finally:
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Handshake bound (satellite: a wedged peer cannot pin a reader forever)
# ----------------------------------------------------------------------
class TestHandshakeTimeout:
    def test_idle_peer_is_cut_and_counted(self, config):
        server, video = make_server(config, service_handshake_timeout_s=0.25)
        transport = SocketTransport(server).start()
        try:
            idler = socket.create_connection(transport.address, timeout=5.0)
            idler.settimeout(5.0)
            try:
                assert idler.recv(1) == b"", "the idle peer should be cut loose"
            finally:
                idler.close()
            assert wait_until(
                lambda: server.obs.handshakes_timed_out.value >= 1
            ), "the timed-out handshake was never counted"
            # A well-behaved client afterwards is served normally.
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False
            ) as client:
                assert client.scan(video.name, "car").regions
        finally:
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Starved-stage timeout messages (satellite)
# ----------------------------------------------------------------------
class TestStarvedStageMessages:
    def test_result_timeout_names_the_queue_stage(self, config):
        tasm, video = make_tasm(config)
        scheduler = BatchScheduler(tasm, window_ms=0.0, max_batch=4)
        scheduler._running = True  # no threads: the query stays queued
        stream = scheduler.submit(Query.select("car", video.name))
        with pytest.raises(ServiceError, match="starved in queue"):
            stream.result(timeout=0.05)

    def test_result_timeout_names_the_execute_stage(self, config):
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=2)
        try:
            stream = server.submit(Query.select("car", video.name))
            assert wait_until(lambda: len(calls) >= 2)
            with pytest.raises(ServiceError, match="starved in execute"):
                stream.result(timeout=0.1)
            gate.set()
            assert stream.result(timeout=30).regions
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            server.stop()

    def test_remote_timeout_reports_the_server_side_stage(self, config):
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        gate = threading.Event()
        calls, original = gate_decoder(server.tasm, gate, hold_call=1)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=1.0, use_shm=False
            ) as client:
                stream = client.scan_streaming(video.name, "car")
                assert wait_until(lambda: len(calls) >= 1)
                with pytest.raises(ServiceError) as excinfo:
                    stream.result()
                message = str(excinfo.value)
                assert "no stream data within" in message
                assert "execute stage" in message, message
                gate.set()
        finally:
            gate.set()
            server.tasm._decoder.prefetch_regions = original
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Zero-cost hooks when no plan is configured
# ----------------------------------------------------------------------
class TestZeroCostWhenUnset:
    def test_every_hook_resolves_to_none_without_a_plan(self, config):
        server, video = make_server(config)
        transport = SocketTransport(server).start()
        try:
            assert server._scheduler._fault_runner_death is None
            assert server.tasm._executor._fault_decode is None
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False
            ) as client:
                connection = only_connection(transport)
                assert connection._fault_drop is None
                assert connection._fault_cut is None
                assert connection._fault_delay is None
                assert client._fault_attach is None
                assert client._fault_skew is None
                assert client.scan(video.name, "car").regions
        finally:
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# The chaos workload
# ----------------------------------------------------------------------
class TestChaos:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_mixed_workload_under_faults(self, config, seed):
        """Mixed queries under a multi-point seeded plan.  Invariants:

        * nothing hangs — every scan reaches a terminal state in time;
        * every outcome is a known state: done, deadline, busy, quarantined;
        * every completed scan's bytes match a fault-free reference;
        * the recovery metrics account for the injected faults.
        """
        plan = FaultPlan(
            [
                FaultSpec(FAULT_RUNNER_DEATH, probability=0.25, max_fires=2),
                FaultSpec(
                    FAULT_TRANSPORT_DROP, probability=0.2, skip_first=3, max_fires=2
                ),
                FaultSpec(
                    FAULT_TRANSPORT_CUT, probability=0.2, skip_first=5, max_fires=1
                ),
                FaultSpec(
                    FAULT_TRANSPORT_DELAY,
                    probability=0.3,
                    delay_ms=5.0,
                    max_fires=10,
                ),
            ],
            seed=seed,
        )
        server, video = make_server(
            config,
            fault_plan=plan,
            service_runners=2,
            service_max_queue_depth=16,
            service_poison_query_kills=3,
        )
        reference, _ = make_tasm(config)
        expected = {label: reference.scan(video.name, label) for label in LABELS}
        transport = ShmTransport(server).start()
        retry = RetryPolicy(attempts=8, base_delay=0.02, max_delay=0.2, seed=seed)
        client_a = RemoteTasmClient(
            transport.address,
            timeout=15.0,
            use_shm=True,
            retry=retry,
            fault_plan=FaultPlan([FaultSpec(FAULT_SHM_ATTACH, max_fires=1)], seed=seed),
        )
        client_b = RemoteTasmClient(
            transport.address,
            timeout=15.0,
            use_shm=False,
            retry=retry,
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        FAULT_CONSUMER_SKEW,
                        probability=0.2,
                        delay_ms=2.0,
                        max_fires=5,
                    )
                ],
                seed=seed,
            ),
        )
        outcomes = {"done": 0, "deadline": 0, "busy": 0, "quarantined": 0}
        try:
            submissions = []
            for index in range(16):
                client = (client_a, client_b)[index % 2]
                label = LABELS[index % len(LABELS)]
                deadline_ms = 40.0 if index % 5 == 0 else None
                stream = client.scan_streaming(
                    video.name, label, deadline_ms=deadline_ms, priority=index % 3
                )
                submissions.append((stream, label))
            for stream, label in submissions:
                try:
                    result = stream.result()
                except DeadlineExceeded:
                    outcomes["deadline"] += 1
                except ServerBusy:
                    outcomes["busy"] += 1
                except PoisonQueryError:
                    outcomes["quarantined"] += 1
                else:
                    outcomes["done"] += 1
                    assert_scan_results_identical(result, expected[label])
            # Every query is accounted for — no hang, no unknown terminal.
            assert sum(outcomes.values()) == len(submissions), outcomes
            scheduler = server._scheduler
            fires = plan.fires()
            # Every injected runner death produced exactly one restart.
            assert wait_until(
                lambda: scheduler.runner_restarts == fires[FAULT_RUNNER_DEATH]
            ), (scheduler.runner_restarts, fires)
            # Reconnects never exceed the wire faults that fired (a fire on a
            # handshake-in-progress consumes budget without a reconnect).
            total_retries = client_a.retries_total + client_b.retries_total
            assert (
                total_retries <= fires[FAULT_TRANSPORT_DROP] + fires[FAULT_TRANSPORT_CUT]
            )
            # Client-visible outcomes never exceed what the scheduler counted
            # (a lost error reply may be retried into a different outcome) —
            # plus the deadlines the clients fast-failed during a reconnect
            # gap, which by design never reach the server.
            fast_fails = client_a.deadline_fast_fails + client_b.deadline_fast_fails
            assert (
                outcomes["deadline"]
                <= scheduler.queries_deadline_exceeded + fast_fails
            )
            assert outcomes["busy"] <= scheduler.queries_shed
            assert outcomes["quarantined"] <= scheduler.queries_quarantined
        finally:
            client_a.close()
            client_b.close()
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# Reconnect resume edge cases (the recovery paths cluster failover leans on)
# ----------------------------------------------------------------------
class TestReconnectResume:
    def capture_sends(self, client):
        """Record every frame the client puts on the wire (resumes included:
        the reader's resume sweep goes through the same ``_send``)."""
        sent: list[dict] = []
        original = client._send

        def instrumented(message):
            sent.append(dict(message))
            return original(message)

        client._send = instrumented
        return sent

    def test_resume_rebases_deadline_and_unions_skip_sots(self, config):
        """The resume after a reconnect must inherit the *remaining* deadline
        budget (not restart the full one) and must union the delivered SOTs
        with the skip list the scan was submitted with — overwriting would
        make a resumed scatter-gather shard re-serve SOTs other shards own."""
        # Writer frames: hello reply (1), chunk SOT0 (2); SOT2 is skipped at
        # submission, so the drop fires on chunk SOT1 — delivered == {0}.
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=2, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False, retry=RETRY
            ) as client:
                sent = self.capture_sends(client)
                stream = client.scan_streaming(
                    video.name, "car", deadline_ms=60000.0, skip_sots=[2]
                )
                result = stream.result()
                assert client.retries_total == 1
                scans = [m for m in sent if m.get("op") == "scan"]
                assert len(scans) == 2, "one submission, one resume"
                assert scans[0]["deadline_ms"] == 60000.0
                assert scans[0]["skip_sots"] == [2]
                resume = scans[1]
                assert 0.0 < resume["deadline_ms"] < 60000.0
                assert resume["skip_sots"] == [0, 2]
                assert server._scheduler.scan_resumes >= 1
                # The spliced result covers exactly SOT0+SOT1 (frames 0..9),
                # byte-identical to an uninterrupted run minus the skip.
                expected = [
                    region
                    for region in reference.scan(video.name, "car").regions
                    if region.frame_index < 10
                ]
                assert len(result.regions) == len(expected)
                for got, want in zip(result.regions, expected):
                    assert got.frame_index == want.frame_index
                    assert got.region == want.region
                    np.testing.assert_array_equal(got.pixels, want.pixels)
        finally:
            transport.stop()
            server.stop()

    def test_deadline_exhausted_during_reconnect_fast_fails(self, config):
        """When the backoff outlives the deadline the client fails the
        stream itself with DEADLINE_EXCEEDED and never resubmits — the old
        behaviour shipped the full original deadline to the new server,
        making a 400 ms promise silently worth 400 ms per reconnect."""
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=2, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        transport = SocketTransport(server).start()
        client = RemoteTasmClient(
            transport.address,
            timeout=10.0,
            use_shm=False,
            # First re-dial waits >= 1 s — past any 400 ms budget.
            retry=RetryPolicy(
                attempts=2, base_delay=1.0, max_delay=1.0, jitter=0.1, seed=5
            ),
        )
        try:
            sent = self.capture_sends(client)
            stream = client.scan_streaming(video.name, "car", deadline_ms=400.0)
            with pytest.raises(DeadlineExceeded):
                stream.result()
            assert wait_until(lambda: client.retries_total == 1)
            assert client.deadline_fast_fails == 1
            assert len([m for m in sent if m.get("op") == "scan"]) == 1
            assert server._queries_submitted == 1, "no orphan resubmission"
        finally:
            client.close()
            transport.stop()
            server.stop()

    def test_stream_closed_during_the_gap_is_not_resubmitted(self, config):
        """A consumer that closes its stream while the wire is down (its
        CANCEL swallowed by the dead socket) must not have the scan
        resurrected by the resume sweep — the old behaviour made the new
        server decode for nobody, holding a pump and cache space."""
        plan = FaultPlan(
            [FaultSpec(FAULT_TRANSPORT_DROP, skip_first=2, max_fires=1)], seed=13
        )
        server, video = make_server(config, fault_plan=plan)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        client = RemoteTasmClient(
            transport.address,
            timeout=10.0,
            use_shm=False,
            # A wide backoff window so the close lands mid-gap.
            retry=RetryPolicy(
                attempts=4, base_delay=0.3, max_delay=0.5, jitter=0.1, seed=7
            ),
        )
        try:
            sent = self.capture_sends(client)
            stream = client.scan_streaming(video.name, "car")
            assert wait_until(lambda: not client._wire_ok.is_set())
            stream.close()  # the consumer walks away during the outage
            assert wait_until(lambda: client.retries_total == 1)
            assert len([m for m in sent if m.get("op") == "scan"]) == 1
            assert server._queries_submitted == 1, "closed scan stayed dead"
            # The healed connection is fully usable for new work.
            assert_scan_results_identical(
                client.scan(video.name, "person"),
                reference.scan(video.name, "person"),
            )
        finally:
            client.close()
            transport.stop()
            server.stop()


# ----------------------------------------------------------------------
# The percentile estimator, against a sorted-sample oracle
# ----------------------------------------------------------------------
PERCENTILE_BOUNDS = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0]


class TestPercentileProperty:
    @given(
        samples=st.lists(
            st.sampled_from(PERCENTILE_BOUNDS + [2.0]), min_size=1, max_size=200
        ),
        twentieths=st.integers(min_value=0, max_value=20),
    )
    def test_matches_sorted_sample_oracle(self, samples, twentieths):
        """For samples lying exactly on bucket bounds the estimator must
        equal the nearest-rank percentile of the sorted samples (computed in
        exact integer arithmetic — the oracle has no floating-point rank).
        Quantiles are multiples of 1/20, which is where float noise bites:
        ``0.15 * 20 == 3.0000000000000004``, and ``quantile=0`` must clamp to
        rank 1 rather than match an empty leading bucket."""
        count = len(samples)
        buckets = [
            (bound, sum(1 for value in samples if value <= bound))
            for bound in PERCENTILE_BOUNDS
        ]
        buckets.append(("+Inf", count))
        quantile = twentieths / 20
        rank = max(1, -((-twentieths * count) // 20))  # exact ceil
        oracle = sorted(samples)[rank - 1]
        expected = float("inf") if oracle > PERCENTILE_BOUNDS[-1] else oracle
        assert percentile_from_buckets(buckets, count, quantile) == expected
