"""Pipelined batch runners, admission control, backpressure, and shutdown.

The contracts pinned here:

* with ``service_runners`` > 1, two batches genuinely execute at the same
  time (proved with a barrier inside the decoder that only a concurrent pair
  can pass), and results stay byte-identical to sequential ``scan()``;
* admission control is round-robin per client: a greedy client with a deep
  queue cannot keep another client's query out of the next batch;
* a bounded stream buffer suspends the producer when the consumer stalls
  (bounding producer-side memory) and resumes it when the consumer drains —
  and ``result()`` on a bounded stream never deadlocks against its own
  backpressure;
* scheduler shutdown fails queued *and* in-flight streams with
  :class:`ServiceError` instead of hanging their consumers;
* a failed stream's terminal state is re-observable: every later iteration
  or ``result()`` raises again (the old queue-sentinel design blocked the
  second consumer forever);
* a connection dying mid-frame raises :class:`TransportError` instead of
  masquerading as a clean EOF.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.query import Query
from repro.errors import ServiceError, TransportError
from repro.service import TasmServer
from repro.service.scheduler import BatchScheduler
from repro.service.transport import _FRAME_HEADER, KIND_JSON, recv_message
from tests.test_exec_engine import (
    assert_scan_results_identical,
    make_tasm,
    random_queries,
)

CACHE_BYTES = 64 * 1024 * 1024


def make_server(config, **service_overrides) -> tuple[TasmServer, object]:
    overrides = {"decode_cache_bytes": CACHE_BYTES, **service_overrides}
    tasm, video = make_tasm(config.with_updates(**overrides))
    return TasmServer(tasm).start(), video


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestRunnerPool:
    def test_two_batches_execute_concurrently(self, config):
        """Only a pool can pass this barrier: each runner's first decode call
        blocks until another runner's decode call arrives — a serial
        scheduler would sit alone at the barrier until it breaks."""
        server, video = make_server(
            config,
            service_runners=2,
            service_max_batch=1,  # force the two queries into two batches
            service_batch_window_ms=0.0,
        )
        tasm = server.tasm
        barrier = threading.Barrier(2)
        first_call_done = set()
        overlapped: list[bool] = []
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            thread_id = threading.get_ident()
            if thread_id not in first_call_done:
                first_call_done.add(thread_id)
                try:
                    barrier.wait(timeout=30)
                    overlapped.append(True)
                except threading.BrokenBarrierError:
                    overlapped.append(False)
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        reference, _ = make_tasm(config)
        try:
            streams = [
                server.submit(Query.select(label, video.name))
                for label in ("car", "person")
            ]
            results = [stream.result(timeout=60) for stream in streams]
        finally:
            tasm._decoder.prefetch_regions = original
            server.stop()

        assert overlapped == [True, True], "batches must overlap across runners"
        for result, label in zip(results, ("car", "person")):
            assert_scan_results_identical(result, reference.scan(video.name, label))

    def test_runner_pool_matches_sequential_results(self, config):
        """4 runners, 4 clients, randomized workloads: byte-identical."""
        server, video = make_server(
            config, service_runners=4, service_batch_window_ms=2.0
        )
        reference, _ = make_tasm(config)
        client_queries = [
            random_queries(video.name, video.frame_count, seed=seed, count=4)
            for seed in range(4)
        ]
        results: dict[int, list] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def run_client(index: int) -> None:
            try:
                client = server.connect()
                barrier.wait()
                results[index] = [
                    client.execute(query) for query in client_queries[index]
                ]
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=run_client, args=(index,)) for index in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "client thread hung"
        finally:
            server.stop()
        assert not errors, errors
        for index, queries in enumerate(client_queries):
            for result, query in zip(results[index], queries):
                assert_scan_results_identical(result, reference.execute(query))

    def test_sqlite_backend_survives_concurrent_runners(self, config):
        """Batch runners plan from several threads; the sqlite index must not
        be pinned to its creating thread."""
        from repro.core.tasm import TASM
        from tests.conftest import build_tiny_video

        video = build_tiny_video()
        tasm = TASM(
            config=config.with_updates(
                decode_cache_bytes=CACHE_BYTES,
                service_runners=3,
                service_max_batch=1,
                service_batch_window_ms=0.0,
            ),
            index_backend="sqlite",
        )
        tasm.ingest(video)
        tasm.add_detections(
            video.name,
            [
                detection
                for frame in range(video.frame_count)
                for detection in video.ground_truth(frame)
            ],
        )
        reference, _ = make_tasm(config)
        with TasmServer(tasm) as server:
            streams = [
                server.submit(Query.select(label, video.name))
                for label in ("car", "person", "sign")
            ]
            for stream, label in zip(streams, ("car", "person", "sign")):
                assert_scan_results_identical(
                    stream.result(timeout=60), reference.scan(video.name, label)
                )


class TestSingleFlightDecode:
    def test_overlapping_batches_decode_each_tile_once(self, config):
        """Two racing batches over the same cold tiles must do one batch's
        decode work: concurrent misses on a tile key are single-flight, the
        follower waits and hits instead of decoding in duplicate."""
        server, video = make_server(
            config,
            service_runners=2,
            service_max_batch=1,
            service_batch_window_ms=0.0,
        )
        tasm = server.tasm
        barrier = threading.Barrier(2)
        first_call_done = set()
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            thread_id = threading.get_ident()
            if thread_id not in first_call_done:
                first_call_done.add(thread_id)
                try:
                    barrier.wait(timeout=30)  # both batches live before decoding
                except threading.BrokenBarrierError:
                    pass
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        reference, _ = make_tasm(config)
        try:
            streams = [
                server.submit(Query.select("car", video.name)) for _ in range(2)
            ]
            results = [stream.result(timeout=60) for stream in streams]
        finally:
            tasm._decoder.prefetch_regions = original
            server.stop()
        expected = reference.scan(video.name, "car")
        for result in results:
            assert_scan_results_identical(result, expected)
        assert server.stats().pixels_decoded == expected.pixels_decoded, (
            "racing batches must not decode the same tiles twice"
        )


class TestAdmissionControl:
    def test_round_robin_gives_every_client_a_slot(self, config):
        """6 queued greedy queries cannot keep the light client out of the
        next batch: rotation takes one per client before seconds."""
        tasm, video = make_tasm(config)
        scheduler = BatchScheduler(tasm, window_ms=0.0, max_batch=4)
        scheduler._running = True  # accept submissions without threads
        try:
            greedy = [
                scheduler.submit(Query.select("car", video.name), client="greedy")
                for _ in range(6)
            ]
            light = scheduler.submit(Query.select("person", video.name), client="light")
            batch: list = []
            with scheduler._cond:
                scheduler._take_round_robin(batch)
            assert len(batch) == 4
            assert batch[0] is greedy[0]
            assert batch[1] is light, "the light client must ride the next batch"
            assert batch[2] is greedy[1] and batch[3] is greedy[2]
            # Second batch drains the greedy backlog (work conservation).
            second: list = []
            with scheduler._cond:
                scheduler._take_round_robin(second)
            assert second == greedy[3:6]
            assert scheduler.queue_depth == 0
        finally:
            scheduler._running = False

    def test_lone_client_still_fills_a_batch(self, config):
        tasm, video = make_tasm(config)
        scheduler = BatchScheduler(tasm, window_ms=0.0, max_batch=3)
        scheduler._running = True
        try:
            streams = [
                scheduler.submit(Query.select("car", video.name), client="only")
                for _ in range(5)
            ]
            batch: list = []
            with scheduler._cond:
                scheduler._take_round_robin(batch)
            assert batch == streams[:3]
        finally:
            scheduler._running = False


class TestBackpressure:
    def test_full_buffer_suspends_producer_until_consumer_drains(self, config):
        """A 3-SOT scan against a 1-chunk buffer: the producer must park with
        exactly one undelivered chunk, then finish once the consumer reads."""
        server, video = make_server(
            config, service_stream_buffer_chunks=1, service_batch_window_ms=0.0
        )
        reference, _ = make_tasm(config)
        sot_count = server.tasm.video(video.name).sot_count
        assert sot_count >= 3, "the backpressure test needs a multi-SOT scan"
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            assert wait_until(lambda: stream.buffered_chunks == 1), (
                "the producer never delivered a first chunk"
            )
            # The producer is now suspended: the buffer stays at its bound and
            # the query cannot complete while undelivered chunks remain.
            time.sleep(0.1)
            assert stream.buffered_chunks == 1, "buffer exceeded its bound"
            assert not stream.done, "the producer finished despite a full buffer"
            chunks = []
            for chunk in stream:
                assert stream.buffered_chunks <= 1
                chunks.append(chunk)
            result = stream.result(timeout=30)
        finally:
            server.stop()
        assert len(chunks) == sot_count
        assert_scan_results_identical(result, reference.scan(video.name, "car"))

    def test_result_only_consumer_never_deadlocks_on_bounded_stream(self, config):
        """``result()`` without iteration must drain (and discard) chunks so
        its own backpressure cannot wedge the producer."""
        server, video = make_server(
            config, service_stream_buffer_chunks=1, service_batch_window_ms=0.0
        )
        reference, _ = make_tasm(config)
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            result = stream.result(timeout=30)
        finally:
            server.stop()
        assert_scan_results_identical(result, reference.scan(video.name, "car"))

    def test_slow_remote_consumer_stays_bounded_and_correct(self, config):
        """Over the socket at 1 chunk credit, a consumer that dawdles between
        chunks never sees more than its credit budget of chunks queued
        client-side (plus the terminal done-event, which shares the queue),
        and the scan still completes byte-identically."""
        from repro.service import RemoteTasmClient, SocketTransport

        server, video = make_server(
            config, service_stream_buffer_chunks=1, service_batch_window_ms=0.0
        )
        reference, _ = make_tasm(config)
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(
                    transport.address, stream_buffer_chunks=1
                ) as client:
                    remote = client.scan_streaming(video.name, "car")
                    chunks = []
                    for sot_index, regions in remote:
                        assert remote._events.qsize() <= 2, (
                            "client-side buffering exceeded the credit budget"
                        )
                        chunks.append((sot_index, regions))
                        time.sleep(0.05)  # a slow consumer
                    result = remote.result()
        finally:
            server.stop()
        assert len(chunks) >= 2, "the slow-consumer test needs a multi-SOT scan"
        assert_scan_results_identical(result, reference.scan(video.name, "car"))


class TestConsumerAbandon:
    def test_close_releases_suspended_producer(self, config):
        """A consumer that walks away from a partially read bounded stream
        must not wedge the batch runner: close() releases the producer and
        later queries are served normally."""
        server, video = make_server(
            config,
            service_runners=1,
            service_stream_buffer_chunks=1,
            service_batch_window_ms=0.0,
        )
        reference, _ = make_tasm(config)
        try:
            abandoned = server.connect().scan_streaming(video.name, "car")
            assert wait_until(lambda: abandoned.buffered_chunks == 1)
            assert not abandoned.done, "producer should be suspended, not done"
            abandoned.close()  # walk away without draining
            # The lone runner must come free: a follow-up scan completes.
            follow_up = server.connect().scan(video.name, "person")
            assert_scan_results_identical(
                follow_up, reference.scan(video.name, "person")
            )
            with pytest.raises(ServiceError):
                abandoned.result(timeout=5)
        finally:
            server.stop()

    def test_close_after_completion_is_a_no_op(self, config):
        server, video = make_server(config)
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            result = stream.result(timeout=30)
            stream.close()
            assert stream.result(timeout=5) is result, (
                "closing a completed stream must not discard its result"
            )
        finally:
            server.stop()


class TestClientTimeouts:
    def _silent_server(self):
        """A listener that accepts, answers the client's hello handshake (no
        shared memory), then never answers anything else.  The accepted
        connection arrives through the returned queue: the client constructor
        blocks on the handshake, so accept-and-hello must run concurrently."""
        import queue as queue_module

        from repro.service.transport import send_message

        listener = socket.create_server(("127.0.0.1", 0))
        accepted: queue_module.Queue = queue_module.Queue()

        def accept_and_hello():
            conn, _ = listener.accept()
            hello = recv_message(conn)
            send_message(
                conn,
                {
                    "type": "hello",
                    "id": hello.get("id"),
                    "version": hello["version"],
                    "shm": None,
                },
            )
            accepted.put(conn)

        threading.Thread(target=accept_and_hello, daemon=True).start()
        return listener, listener.getsockname()[:2], accepted

    def test_stream_read_times_out_instead_of_hanging(self):
        from repro.service import RemoteTasmClient

        listener, address, accepted = self._silent_server()
        try:
            client = RemoteTasmClient(address, timeout=0.3)
            conn = accepted.get(timeout=5)
            stream = client.scan_streaming("some-video", "car")
            recv_message(conn)  # swallow the request; answer nothing
            with pytest.raises(ServiceError):
                stream.result()
            client.close()
            conn.close()
        finally:
            listener.close()

    def test_malformed_frame_fails_outstanding_requests(self):
        """A corrupt frame must kill the demux loudly: blocked callers raise
        instead of waiting on a reader thread that died."""
        from repro.service import RemoteTasmClient
        from repro.service.transport import KIND_JSON, send_frame

        listener, address, accepted = self._silent_server()
        try:
            client = RemoteTasmClient(address, timeout=5.0)
            conn = accepted.get(timeout=5)
            stream = client.scan_streaming("some-video", "car")
            recv_message(conn)
            send_frame(conn, KIND_JSON, b"\xff\xfe this is not json")
            with pytest.raises(ServiceError):
                stream.result()
            # The connection is marked dead: new requests fail fast.
            with pytest.raises(ServiceError):
                client.stats()
            client.close()
            conn.close()
        finally:
            listener.close()


class TestShutdown:
    def test_stop_fails_queued_and_inflight_streams(self, config):
        """A runner wedged mid-decode must not strand anyone: queued streams
        fail at stop, the in-flight stream fails after the drain deadline."""
        server, video = make_server(
            config,
            service_runners=1,
            service_max_batch=1,
            service_batch_window_ms=0.0,
        )
        tasm = server.tasm
        entered = threading.Event()
        gate = threading.Event()
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            entered.set()
            gate.wait(timeout=60)
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        try:
            in_flight = server.submit(Query.select("car", video.name))
            assert entered.wait(timeout=10), "the in-flight batch never started"
            queued = [
                server.submit(Query.select("person", video.name)) for _ in range(3)
            ]
            server._scheduler.stop(timeout=0.5)
            for stream in queued:
                with pytest.raises(ServiceError):
                    stream.result(timeout=10)
            with pytest.raises(ServiceError):
                in_flight.result(timeout=10)
            with pytest.raises(ServiceError):
                list(in_flight)
        finally:
            gate.set()  # release the wedged runner so its thread can exit
            tasm._decoder.prefetch_regions = original

    def test_submit_during_shutdown_raises_not_hangs(self, config):
        server, video = make_server(config)
        server.stop()
        with pytest.raises(ServiceError):
            server.submit(Query.select("car", video.name))


class TestTerminalStateReobservable:
    def test_failed_stream_raises_on_every_consumer(self, config):
        """Satellite regression: the single queue sentinel used to be eaten
        by the first iterator, blocking the second forever."""
        server, video = make_server(config)
        tasm = server.tasm

        def explode(sot, requests, scope):
            raise RuntimeError("decoder exploded")

        tasm._decoder.prefetch_regions = explode
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            for _ in range(3):
                with pytest.raises(ServiceError):
                    list(stream)
                with pytest.raises(ServiceError):
                    stream.result(timeout=10)
        finally:
            server.stop()

    def test_remote_failed_stream_raises_on_every_consumer(self, config):
        from repro.service import RemoteTasmClient, SocketTransport

        server, video = make_server(config)
        tasm = server.tasm

        def explode(sot, requests, scope):
            raise RuntimeError("decoder exploded")

        tasm._decoder.prefetch_regions = explode
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    stream = client.scan_streaming(video.name, "car")
                    for _ in range(3):
                        with pytest.raises(ServiceError):
                            list(stream)
                        with pytest.raises(ServiceError):
                            stream.result()
        finally:
            server.stop()


class TestWireFraming:
    def test_clean_eof_at_frame_boundary_returns_none(self):
        ours, theirs = socket.socketpair()
        ours.close()
        try:
            assert recv_message(theirs) is None
        finally:
            theirs.close()

    def test_eof_inside_header_raises(self):
        ours, theirs = socket.socketpair()
        ours.sendall(b"\x00\x00")  # two of the five header bytes
        ours.close()
        try:
            with pytest.raises(TransportError):
                recv_message(theirs)
        finally:
            theirs.close()

    def test_eof_inside_payload_raises(self):
        ours, theirs = socket.socketpair()
        # A frame promising 100 payload bytes, delivering 10.
        ours.sendall(_FRAME_HEADER.pack(KIND_JSON, 100) + b"x" * 10)
        ours.close()
        try:
            with pytest.raises(TransportError):
                recv_message(theirs)
        finally:
            theirs.close()

    def test_transport_error_is_a_service_error(self):
        assert issubclass(TransportError, ServiceError)
