"""Per-stream credits, wire cancellation, and the shared-memory data path.

The contracts pinned here:

* credits isolate streams: a consumer that stops draining stream A parks only
  A's server-side pump — stream B on the *same connection* still completes at
  full throughput, and A's client-side queue never holds more chunks than its
  credit budget (no head-of-line blocking through the shared demux reader);
* a wire ``CANCEL`` (sent by ``RemoteScanStream.close()``) frees the scan's
  pump thread, makes the scheduler count the query as cancelled, and skips
  the scan's remaining per-SOT decode work — an abandoned scan stops costing
  decode within one SOT;
* a stream closed while still queued never enters a batch at all;
* the shared-memory pixel path is byte-identical to the socket path, falls
  back per chunk when the ring cannot hold a payload, and degrades cleanly
  to the socket when the server offers no ring or the client cannot attach;
* ``_Outbox.put`` blocked on a full outbox raises promptly when the
  connection closes (no polling, no silent frame drops);
* ``RemoteTasmClient.close()`` joins its reader with a deadline and warns —
  rather than leaking silently — when the thread fails to exit;
* ``ResultStream.result(timeout=None)`` raises when the scheduler's worker
  threads are gone instead of waiting on a completion that can never arrive;
* the hello handshake refuses protocol-version skew in both directions.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

import pytest

from repro.core.query import Query
from repro.errors import ProtocolError, ServiceError, TransportError
from repro.service import RemoteTasmClient, ShmTransport, SocketTransport, TasmServer
from repro.service.scheduler import _SHUTDOWN, ResultStream
from repro.service.transport import (
    _Outbox,
    _ShmRing,
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)
from tests.test_exec_engine import assert_scan_results_identical, make_tasm

CACHE_BYTES = 64 * 1024 * 1024


def make_server(config, **service_overrides) -> tuple[TasmServer, object]:
    overrides = {"decode_cache_bytes": CACHE_BYTES, **service_overrides}
    tasm, video = make_tasm(config.with_updates(**overrides))
    return TasmServer(tasm).start(), video


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def only_connection(transport: SocketTransport):
    """The transport's single accepted connection (waits for the accept)."""
    assert wait_until(lambda: len(transport._connections) == 1)
    return next(iter(transport._connections))


class TestCredits:
    def test_slow_consumer_does_not_stall_other_stream(self, config):
        """Stream A unconsumed at 1 credit; B on the same connection must
        still run to completion, and A must hold at most 1 undelivered chunk
        client-side (the credit bound, not the old 64-chunk queue bound)."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, stream_buffer_chunks=1, use_shm=False
            ) as client:
                slow = client.scan_streaming(video.name, "car")
                # The server spends A's single credit on its first chunk,
                # then parks A's pump — and only A's pump.
                assert wait_until(lambda: slow._events.qsize() >= 1)
                fast = client.scan(video.name, "person")
                assert_scan_results_identical(
                    fast, reference.scan(video.name, "person")
                )
                assert slow._events.qsize() == 1, (
                    "an unconsumed stream must never hold more chunks than "
                    "its credit budget"
                )
                # Draining A returns credits chunk by chunk; the parked pump
                # resumes and the stream completes byte-identical.
                assert_scan_results_identical(
                    slow.result(), reference.scan(video.name, "car")
                )
        finally:
            transport.stop()
            server.stop()


class TestCancellation:
    def test_wire_cancel_frees_pump_and_skips_remaining_decode(self, config):
        """Cancel after the first SOT: the pump exits without a done-reply,
        the scheduler counts the cancel, the third SOT is never prefetched,
        and the freed runner serves a follow-up scan."""
        server, video = make_server(
            config, service_runners=1, service_batch_window_ms=0.0
        )
        reference, _ = make_tasm(config)
        tasm = server.tasm
        prefetch_calls = []
        gate = threading.Event()
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            prefetch_calls.append(scope)
            if len(prefetch_calls) == 2:
                gate.wait(timeout=30)  # hold the batch between SOTs 1 and 2
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=False
            ) as client:
                stream = client.scan_streaming(video.name, "car")
                chunks = iter(stream)
                next(chunks)  # first SOT landed; decode of the second is gated
                stream.close()  # sends CANCEL on the wire
                # The server-side pump observed the cancel and released the
                # scan before the batch even resumed.
                connection = only_connection(transport)
                assert wait_until(lambda: not connection._scans)
                gate.set()
                assert wait_until(
                    lambda: server.stats().queries_cancelled >= 1
                ), "the scheduler never counted the cancelled query"
                calls_after_cancel = len(prefetch_calls)
                assert calls_after_cancel == 2, (
                    f"the cancelled scan's remaining SOTs should be skipped, "
                    f"but {calls_after_cancel} of 3 were prefetched"
                )
                with pytest.raises(ServiceError):
                    stream.result()
                # The runner is free again: a fresh scan completes normally.
                assert_scan_results_identical(
                    client.scan(video.name, "person"),
                    reference.scan(video.name, "person"),
                )
        finally:
            gate.set()
            tasm._decoder.prefetch_regions = original
            transport.stop()
            server.stop()

    def test_stream_closed_while_queued_never_enters_a_batch(self, config):
        """Close a still-pending stream: it is dropped at collection, counted
        cancelled, and costs no decode."""
        server, video = make_server(
            config, service_runners=1, service_max_batch=1, service_batch_window_ms=0.0
        )
        tasm = server.tasm
        entered = threading.Event()
        gate = threading.Event()
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            entered.set()
            gate.wait(timeout=30)
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        try:
            busy = server.submit(Query.select("car", video.name))
            assert entered.wait(timeout=10), "the first batch never started"
            queued = server.submit(Query.select("person", video.name))
            queued.close()  # abandoned before it could be collected
            tasm._decoder.prefetch_regions = original
            gate.set()
            busy.result(timeout=30)
            # Force another collection pass so the dead stream is drained.
            server.submit(Query.select("sign", video.name)).result(timeout=30)
            assert wait_until(
                lambda: server._scheduler.queries_cancelled >= 1
            ), "a stream closed while queued must be counted as cancelled"
            with pytest.raises(ServiceError):
                queued.result(timeout=5)
        finally:
            gate.set()
            tasm._decoder.prefetch_regions = original
            server.stop()


class TestSharedMemory:
    def test_shm_roundtrip_byte_identical(self, config):
        """Pixels through the ring: results identical to a direct scan, and
        every chunk of every scan rode shared memory, none the socket."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = ShmTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=True
            ) as client:
                assert client.shm_active
                for label in ("car", "person", "sign"):
                    assert_scan_results_identical(
                        client.scan(video.name, label),
                        reference.scan(video.name, label),
                    )
                assert client.shm_chunks_received > 0
                assert client.socket_chunks_received == 0
        finally:
            transport.stop()
            server.stop()

    def test_exhausted_ring_falls_back_to_socket_per_chunk(self, config):
        """A ring too small for any chunk: the negotiation still succeeds,
        every chunk falls back to the socket, results stay identical."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = ShmTransport(server, shm_ring_bytes=16).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=True
            ) as client:
                assert client.shm_active  # the ring exists, however tiny
                assert_scan_results_identical(
                    client.scan(video.name, "car"),
                    reference.scan(video.name, "car"),
                )
                assert client.socket_chunks_received > 0
                assert client.shm_chunks_received == 0
        finally:
            transport.stop()
            server.stop()

    def test_plain_socket_transport_offers_no_ring(self, config):
        """use_shm against a SocketTransport: hello answers ``shm: null``
        and everything arrives over the socket."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = SocketTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=True
            ) as client:
                assert not client.shm_active
                assert_scan_results_identical(
                    client.scan(video.name, "car"),
                    reference.scan(video.name, "car"),
                )
                assert client.socket_chunks_received > 0
        finally:
            transport.stop()
            server.stop()

    def test_attach_failure_falls_back_to_socket(self, config, monkeypatch):
        """A client that cannot map the segment reports ``shm_failed``; the
        server destroys the ring and serves the socket path."""
        import repro.service.transport as transport_module

        def broken_attach(name):
            raise OSError("cannot map the segment")

        monkeypatch.setattr(transport_module, "_attach_shm", broken_attach)
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        transport = ShmTransport(server).start()
        try:
            with RemoteTasmClient(
                transport.address, timeout=30.0, use_shm=True
            ) as client:
                assert not client.shm_active
                connection = only_connection(transport)
                assert wait_until(lambda: connection._shm_ring is None), (
                    "the server must tear the ring down on shm_failed"
                )
                assert_scan_results_identical(
                    client.scan(video.name, "car"),
                    reference.scan(video.name, "car"),
                )
                assert client.socket_chunks_received > 0
        finally:
            transport.stop()
            server.stop()

    def test_ring_reclaims_only_the_acked_in_order_prefix(self):
        """Acks can arrive out of allocation order (pumps race); the tail
        must never advance over an unacked slot."""
        ring = _ShmRing(1024)
        try:
            first = ring.try_write([b"a" * 400], 400)
            second = ring.try_write([b"b" * 400], 400)
            assert first == 0 and second == 400
            assert ring.try_write([b"c" * 400], 400) is None  # full
            ring.ack(second)  # out of order: frees nothing yet
            assert ring.try_write([b"c" * 400], 400) is None
            ring.ack(first)  # the prefix is contiguous now: both recycle
            third = ring.try_write([b"c" * 400], 400)
            assert third is not None
            assert bytes(ring._segment.buf[third : third + 3]) == b"ccc"
        finally:
            ring.destroy()


class TestOutbox:
    def test_blocked_put_raises_promptly_on_close(self):
        """A producer blocked on a full outbox must raise TransportError the
        moment the connection closes — not after a polling interval, and
        never by silently dropping the frame."""
        outbox = _Outbox(1)
        outbox.put(("header", b"payload"))
        outcome: queue.Queue = queue.Queue()
        blocked = threading.Event()

        def producer():
            blocked.set()
            try:
                outbox.put(("header-2", b"payload-2"))
                outcome.put(None)  # the silent-drop failure mode
            except TransportError as error:
                outcome.put(error)

        threading.Thread(target=producer, daemon=True).start()
        assert blocked.wait(timeout=5)
        time.sleep(0.05)  # let the producer reach the full-buffer wait
        started = time.monotonic()
        outbox.close()
        result = outcome.get(timeout=2)
        elapsed = time.monotonic() - started
        assert isinstance(result, TransportError)
        assert elapsed < 0.5, f"a blocked put took {elapsed:.2f}s to fail"
        # The frame accepted before the close still drains.
        assert outbox.get() == ("header", b"payload")
        assert outbox.get() is None


class TestClientClose:
    def test_close_warns_when_reader_fails_to_exit(self, config):
        """A reader wedged past the join deadline must be reported, not
        silently leaked."""
        server, video = make_server(config)
        transport = SocketTransport(server).start()
        client = RemoteTasmClient(transport.address, timeout=30.0, use_shm=False)
        real_reader = client._reader
        wedged = threading.Thread(target=lambda: time.sleep(30), daemon=True)
        wedged.start()
        client._reader = wedged
        try:
            with pytest.warns(RuntimeWarning, match="reader thread"):
                client.close(join_timeout=0.2)
            real_reader.join(timeout=5)
            assert not real_reader.is_alive()
        finally:
            transport.stop()
            server.stop()


class TestSchedulerLiveness:
    def test_runner_pool_death_is_survived_by_supervision(self, config):
        """A runner pool that dies is rebuilt by the supervisor: a query
        submitted against dead runners still completes (PR 8's supervision
        replaced the old fail-loudly liveness outcome for this scenario)."""
        server, video = make_server(config)
        scheduler = server._scheduler
        try:
            for _ in scheduler._runners:
                scheduler._batches.put(_SHUTDOWN)
            assert wait_until(
                lambda: not any(runner.is_alive() for runner in scheduler._runners)
            )
            stream = server.submit(Query.select("car", video.name))
            result = stream.result(timeout=30)
            assert result.regions
            assert scheduler.runner_restarts >= 1
            assert any(runner.is_alive() for runner in scheduler._runners)
        finally:
            server.stop()

    def test_result_raises_when_workers_gone(self, config):
        """result(timeout=None) must fail loudly when the threads that would
        complete the stream can never return (dead collector, dead pool with
        no supervisor) instead of waiting forever."""
        server, video = make_server(config)
        try:
            stream = server.submit(Query.select("car", video.name))
            stream.result(timeout=30)  # drain the real completion first
            stream2 = ResultStream(Query.select("car", video.name))
            stream2._liveness = lambda: False
            outcome: queue.Queue = queue.Queue()

            def waiter():
                try:
                    stream2.result(timeout=None)
                    outcome.put(None)
                except ServiceError as error:
                    outcome.put(error)

            threading.Thread(target=waiter, daemon=True).start()
            result = outcome.get(timeout=5)
            assert isinstance(result, ServiceError)
            assert "worker threads" in str(result)
        finally:
            server.stop()


class TestHandshake:
    def test_server_refuses_version_skew(self, config):
        server, _ = make_server(config)
        transport = SocketTransport(server).start()
        try:
            conn = socket.create_connection(transport.address, timeout=5)
            conn.settimeout(5)
            send_message(conn, {"op": "hello", "id": 0, "version": 99, "shm": False})
            reply = recv_message(conn)
            assert reply["type"] == "error"
            assert "version" in reply["message"]
            conn.close()
        finally:
            transport.stop()
            server.stop()

    def test_client_refuses_version_skew(self):
        listener = socket.create_server(("127.0.0.1", 0))

        def answer_with_old_version():
            conn, _ = listener.accept()
            recv_message(conn)
            send_message(conn, {"type": "hello", "id": 0, "version": 1, "shm": None})

        threading.Thread(target=answer_with_old_version, daemon=True).start()
        try:
            with pytest.raises(ProtocolError):
                RemoteTasmClient(listener.getsockname()[:2], timeout=5.0)
        finally:
            listener.close()

    def test_protocol_version_is_two(self):
        """The credit/cancel/shm rework bumped the protocol."""
        assert PROTOCOL_VERSION == 2
