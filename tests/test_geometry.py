"""Tests for repro.geometry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Rectangle, interval_cover, merge_intervals, total_covered_area


def rect(x1=0, y1=0, x2=10, y2=10) -> Rectangle:
    return Rectangle(x1, y1, x2, y2)


class TestRectangleBasics:
    def test_width_height_area(self):
        r = rect(1, 2, 5, 10)
        assert r.width == 4
        assert r.height == 8
        assert r.area == 32

    def test_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            Rectangle(5, 0, 1, 10)
        with pytest.raises(GeometryError):
            Rectangle(0, 5, 10, 1)

    def test_zero_area_is_empty(self):
        assert Rectangle(3, 3, 3, 8).is_empty
        assert not rect().is_empty

    def test_center(self):
        assert rect(0, 0, 10, 20).center == (5.0, 10.0)

    def test_iteration_order(self):
        assert list(rect(1, 2, 3, 4)) == [1, 2, 3, 4]

    def test_as_int_tuple_truncates(self):
        assert Rectangle(1.7, 2.2, 3.9, 4.5).as_int_tuple() == (1, 2, 3, 4)


class TestRectangleSetOperations:
    def test_disjoint_rectangles_do_not_intersect(self):
        assert not rect(0, 0, 5, 5).intersects(rect(6, 6, 10, 10))
        assert rect(0, 0, 5, 5).intersection(rect(6, 6, 10, 10)) is None

    def test_touching_edges_do_not_intersect(self):
        # Half-open semantics: sharing an edge is not an overlap.
        assert not rect(0, 0, 5, 5).intersects(rect(5, 0, 10, 5))

    def test_intersection_area(self):
        overlap = rect(0, 0, 6, 6).intersection(rect(3, 3, 10, 10))
        assert overlap == Rectangle(3, 3, 6, 6)
        assert rect(0, 0, 6, 6).intersection_area(rect(3, 3, 10, 10)) == 9

    def test_union_bounds(self):
        assert rect(0, 0, 2, 2).union_bounds(rect(5, 5, 7, 9)) == Rectangle(0, 0, 7, 9)

    def test_contains(self):
        assert rect(0, 0, 10, 10).contains(rect(2, 2, 8, 8))
        assert not rect(0, 0, 10, 10).contains(rect(2, 2, 12, 8))

    def test_contains_point_half_open(self):
        r = rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert not r.contains_point(10, 5)

    def test_iou(self):
        a = rect(0, 0, 10, 10)
        b = rect(5, 0, 15, 10)
        assert a.iou(b) == pytest.approx(50 / 150)
        assert a.iou(rect(20, 20, 30, 30)) == 0.0
        assert a.iou(a) == 1.0


class TestRectangleTransforms:
    def test_translate(self):
        assert rect(1, 1, 2, 2).translate(3, -1) == Rectangle(4, 0, 5, 1)

    def test_scale(self):
        assert rect(1, 2, 3, 4).scale(2, 10) == Rectangle(2, 20, 6, 40)

    def test_clamp_inside_bounds(self):
        assert rect(-5, -5, 5, 5).clamp(rect(0, 0, 10, 10)) == Rectangle(0, 0, 5, 5)

    def test_clamp_outside_returns_none(self):
        assert rect(20, 20, 30, 30).clamp(rect(0, 0, 10, 10)) is None

    def test_expand_with_bounds(self):
        grown = rect(4, 4, 6, 6).expand(10, bounds=rect(0, 0, 10, 10))
        assert grown == Rectangle(0, 0, 10, 10)

    def test_snapped_outward(self):
        snapped = Rectangle(3, 5, 12, 13).snapped(8)
        assert snapped == Rectangle(0, 0, 16, 16)

    def test_snapped_requires_positive_step(self):
        with pytest.raises(GeometryError):
            rect().snapped(0)


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(5, 5), (1, 2)]) == [(1, 2)]

    def test_interval_cover(self):
        assert interval_cover([(0, 5), (3, 8), (10, 12)]) == 10

    def test_total_covered_area_no_double_counting(self):
        bounds = rect(0, 0, 100, 100)
        boxes = [rect(0, 0, 10, 10), rect(5, 5, 15, 15)]
        # Union is 100 + 100 - 25 = 175.
        assert total_covered_area(boxes, bounds) == 175

    def test_total_covered_area_clips_to_bounds(self):
        bounds = rect(0, 0, 10, 10)
        assert total_covered_area([rect(5, 5, 50, 50)], bounds) == 25

    def test_total_covered_area_empty(self):
        assert total_covered_area([], rect(0, 0, 10, 10)) == 0.0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
coordinates = st.integers(min_value=0, max_value=200)


@st.composite
def rectangles(draw):
    x1 = draw(coordinates)
    y1 = draw(coordinates)
    x2 = draw(st.integers(min_value=x1 + 1, max_value=x1 + 100))
    y2 = draw(st.integers(min_value=y1 + 1, max_value=y1 + 100))
    return Rectangle(x1, y1, x2, y2)


@given(rectangles(), rectangles())
def test_intersection_is_contained_in_both(a: Rectangle, b: Rectangle):
    overlap = a.intersection(b)
    if overlap is not None:
        assert a.contains(overlap)
        assert b.contains(overlap)
        assert overlap.area <= min(a.area, b.area)


@given(rectangles(), rectangles())
def test_intersection_is_commutative(a: Rectangle, b: Rectangle):
    assert a.intersection(b) == b.intersection(a)
    assert a.intersection_area(b) == b.intersection_area(a)


@given(rectangles(), rectangles())
def test_union_bounds_contains_both(a: Rectangle, b: Rectangle):
    union = a.union_bounds(b)
    assert union.contains(a)
    assert union.contains(b)


@given(rectangles(), st.integers(min_value=1, max_value=32))
def test_snapped_contains_original(box: Rectangle, step: int):
    snapped = box.snapped(step)
    assert snapped.contains(box)
    assert snapped.x1 % step == 0 and snapped.y1 % step == 0
    assert snapped.x2 % step == 0 and snapped.y2 % step == 0


@given(st.lists(rectangles(), max_size=8))
def test_total_covered_area_bounds(boxes: list[Rectangle]):
    bounds = Rectangle(0, 0, 300, 300)
    area = total_covered_area(boxes, bounds)
    assert 0.0 <= area <= bounds.area
    # Union area never exceeds the sum of individual (clipped) areas.
    assert area <= sum(box.area for box in boxes) + 1e-9
