"""Tests for the TASM service layer (``repro.service``).

The contracts pinned here:

* results served through ``TasmServer`` — blocking, streaming, in-process or
  over the socket transport — are byte-identical to direct ``TASM.scan``;
* concurrent clients with overlapping queries share decodes: the server
  decodes strictly fewer pixels than the same queries on independent TASM
  instances would (the PR's acceptance criterion);
* streaming is real: the first SOT's results reach the client before the
  batch's last SOT has been decoded (asserted with an instrumented decoder
  that refuses to decode the last SOT until the first chunk has landed);
* the batching window and max-batch knobs actually coalesce.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import TasmConfig
from repro.core.query import Query
from repro.errors import ServiceError
from repro.service import RemoteTasmClient, SocketTransport, TasmServer
from tests.test_exec_engine import (
    assert_scan_results_identical,
    make_tasm,
    random_queries,
)

CACHE_BYTES = 64 * 1024 * 1024


def make_server(config: TasmConfig, **service_overrides) -> tuple[TasmServer, object]:
    """A started server over the tiny scene (caller must stop it)."""
    overrides = {"decode_cache_bytes": CACHE_BYTES, **service_overrides}
    tasm, video = make_tasm(config.with_updates(**overrides))
    return TasmServer(tasm).start(), video


class TestServerBasics:
    def test_client_scan_matches_direct_tasm(self, config):
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        try:
            client = server.connect()
            for label in ("car", "person", "sign"):
                assert_scan_results_identical(
                    client.scan(video.name, label), reference.scan(video.name, label)
                )
        finally:
            server.stop()

    def test_server_grants_cache_to_cacheless_tasm(self, config):
        tasm, video = make_tasm(config)  # decode_cache_bytes = 0
        assert tasm.tile_cache is None
        server = TasmServer(tasm)
        assert tasm.tile_cache is not None, "a server needs a shared cache"
        assert tasm._decoder.cache is tasm.tile_cache
        with server:
            reference, _ = make_tasm(config)
            assert_scan_results_identical(
                server.scan(video.name, "car"), reference.scan(video.name, "car")
            )

    def test_submit_after_stop_raises(self, config):
        server, video = make_server(config)
        server.stop()
        with pytest.raises(ServiceError):
            server.submit(Query.select("car", video.name))

    def test_no_match_query_completes_with_no_chunks(self, config):
        server, video = make_server(config)
        try:
            stream = server.connect().scan_streaming(video.name, "unicorn")
            assert list(stream) == []
            assert stream.result().is_empty()
        finally:
            server.stop()

    def test_config_rejects_both_tasm_and_config(self, config):
        tasm, _ = make_tasm(config)
        with pytest.raises(ValueError):
            TasmServer(tasm, config=config)

    def test_restart_after_clean_stop(self, config):
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        server.stop()
        server.start()
        try:
            assert_scan_results_identical(
                server.scan(video.name, "car"), reference.scan(video.name, "car")
            )
        finally:
            server.stop()

    def test_bad_query_does_not_poison_its_batch(self, config):
        """A batch-mate's unknown video must fail only that query."""
        server, video = make_server(
            config, service_batch_window_ms=250.0, service_max_batch=16
        )
        reference, _ = make_tasm(config)
        try:
            good = server.submit(Query.select("car", video.name))
            bad = server.submit(Query.select("car", "no-such-video"))
            result = good.result(timeout=30)
            with pytest.raises(ServiceError):
                bad.result(timeout=30)
            assert_scan_results_identical(result, reference.scan(video.name, "car"))
        finally:
            server.stop()


class TestConcurrentClients:
    def test_concurrent_overlapping_clients_share_decodes(self, config):
        """Acceptance: >= 4 concurrent clients, byte-identical results, and
        strictly fewer pixels decoded than 4 independent TASM instances."""
        server, video = make_server(
            config, service_batch_window_ms=50.0, service_max_batch=32
        )
        reference, _ = make_tasm(config)
        client_queries = [
            random_queries(video.name, video.frame_count, seed=seed, count=4)
            for seed in range(4)
        ]
        results: dict[int, list] = {}
        barrier = threading.Barrier(4)

        def run_client(index: int) -> None:
            client = server.connect()
            barrier.wait()
            results[index] = [client.execute(query) for query in client_queries[index]]

        threads = [
            threading.Thread(target=run_client, args=(index,)) for index in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "client thread deadlocked"
        finally:
            server.stop()

        # Byte-identical to the sequential oracle, per client, per query.
        independent_pixels = 0
        for index, queries in enumerate(client_queries):
            for result, query in zip(results[index], queries):
                expected = reference.execute(query)
                assert_scan_results_identical(result, expected)
                independent_pixels += expected.pixels_decoded

        served_pixels = server.stats().pixels_decoded
        assert served_pixels < independent_pixels, (
            f"shared serving must decode strictly fewer pixels "
            f"({served_pixels} vs {independent_pixels} independently)"
        )
        assert server.stats().cache_hit_rate > 0.0

    def test_batching_window_coalesces_concurrent_queries(self, config):
        server, video = make_server(
            config, service_batch_window_ms=250.0, service_max_batch=16
        )
        try:
            streams = [
                server.submit(Query.select(label, video.name))
                for label in ("car", "person", "sign")
            ]
            for stream in streams:
                stream.result(timeout=30)
            assert server._scheduler.batches_executed == 1, (
                "queries inside one window must form one batch"
            )
        finally:
            server.stop()

    def test_max_batch_bounds_coalescing(self, config):
        server, video = make_server(
            config, service_batch_window_ms=10_000.0, service_max_batch=2
        )
        try:
            streams = [
                server.submit(Query.select("car", video.name)) for _ in range(4)
            ]
            for stream in streams:
                stream.result(timeout=30)
            # A full batch must dispatch without waiting out the huge window.
            assert server._scheduler.batches_executed == 2
        finally:
            server.stop()


class TestStreaming:
    def test_first_chunk_arrives_before_last_sot_decodes(self, config):
        """The instrumented decoder refuses to prefetch the final SOT until
        the client has received the first SOT's chunk: if streaming were
        batch-at-the-end, this would deadlock (and the gate's timeout would
        fail the batch)."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        tasm = server.tasm
        last_sot = tasm.video(video.name).sot_count - 1
        assert last_sot >= 2, "the streaming test needs at least three SOTs"

        first_chunk_received = threading.Event()
        gate_ok = []
        original = tasm._decoder.prefetch_regions

        def instrumented(sot, requests, scope):
            if sot.sot_index == last_sot:
                gate_ok.append(first_chunk_received.wait(timeout=30))
            return original(sot, requests, scope)

        tasm._decoder.prefetch_regions = instrumented
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            chunks = []
            for chunk in stream:
                chunks.append(chunk)
                first_chunk_received.set()
            result = stream.result()
        finally:
            tasm._decoder.prefetch_regions = original
            server.stop()

        assert gate_ok == [True], "first chunk must precede the last SOT's decode"
        assert len(chunks) == last_sot + 1, "one chunk per SOT the query touches"
        assert stream.first_result_seconds is not None
        assert_scan_results_identical(result, reference.scan(video.name, "car"))
        # The streamed chunks concatenate to exactly the final result.
        streamed = [region for chunk in chunks for region in chunk.regions]
        assert len(streamed) == len(result.regions)
        for ours, theirs in zip(streamed, result.regions):
            assert ours is theirs

    def test_stream_of_failed_batch_raises_service_error(self, config):
        server, video = make_server(config)
        tasm = server.tasm

        def explode(sot, requests, scope):
            raise RuntimeError("decoder exploded")

        tasm._decoder.prefetch_regions = explode
        try:
            stream = server.connect().scan_streaming(video.name, "car")
            with pytest.raises(ServiceError):
                list(stream)
            with pytest.raises(ServiceError):
                stream.result(timeout=10)
        finally:
            server.stop()


class TestServerStats:
    def test_counters_and_per_class_work(self, config):
        server, video = make_server(config)
        try:
            client = server.connect()
            client.scan(video.name, "car")
            client.scan(video.name, "car")
            client.scan(video.name, "person")
            stats = server.stats()
        finally:
            server.stop()
        assert stats.queries_submitted == 3
        assert stats.queries_completed == 3
        assert stats.queue_depth == 0
        assert stats.qps > 0
        assert stats.uptime_seconds > 0
        # The repeated car scan was served from the shared cache.
        assert stats.cache_hit_rate > 0.0
        assert stats.pixels_decoded > 0
        assert set(stats.decode_work_by_label) == {"car", "person"}
        assert stats.decode_work_by_label["car"]["queries"] == 2
        # Per-query attribution: under batched serving a query's regions come
        # out of the warm cache, so per-class work shows up as cache-served
        # pixels (the batch's decode work lives in the server-wide counter).
        car_work = stats.decode_work_by_label["car"]
        assert car_work["pixels_served_from_cache"] > 0
        # The snapshot round-trips through JSON for the transport.
        import json

        assert json.loads(json.dumps(stats.as_dict())) == stats.as_dict()


class TestSocketTransport:
    def test_remote_scan_matches_direct(self, config):
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    result = client.scan(video.name, "car")
                    assert_scan_results_identical(
                        result, reference.scan(video.name, "car")
                    )
                    ranged = client.scan(video.name, "person", frame_start=0, frame_stop=7)
                    from repro.core.predicates import TemporalPredicate

                    expected = reference.scan(
                        video.name, "person", TemporalPredicate.between(0, 7)
                    )
                    assert_scan_results_identical(ranged, expected)
        finally:
            server.stop()

    def test_remote_streaming_delivers_per_sot_chunks(self, config):
        server, video = make_server(config)
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    chunks = list(client.scan_streaming(video.name, "car"))
                    assert len(chunks) >= 2, "a multi-SOT scan must stream chunks"
                    sots = [sot_index for sot_index, _ in chunks]
                    assert sots == sorted(sots)
        finally:
            server.stop()

    def test_remote_add_metadata_and_stats(self, config):
        server, video = make_server(config)
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    client.add_metadata(video.name, 0, "landmark", 8, 8, 40, 40)
                    result = client.scan(video.name, "landmark")
                    assert len(result.regions) == 1
                    assert result.regions[0].frame_index == 0
                    stats = client.stats()
                    assert stats["queries_completed"] >= 1
                    assert "landmark" in stats["decode_work_by_label"]
        finally:
            server.stop()

    def test_unknown_op_reports_error_and_connection_survives(self, config):
        """Spoken raw (no RemoteTasmClient, whose reader owns the socket), an
        unknown op earns a tagged error frame and the connection stays usable."""
        import socket as socket_module

        from repro.service.transport import recv_message, send_message

        server, video = make_server(config)
        try:
            with SocketTransport(server) as transport:
                with socket_module.create_connection(transport.address, timeout=10) as sock:
                    send_message(sock, {"op": "transmogrify", "id": 7})
                    reply = recv_message(sock)
                    assert reply["type"] == "error"
                    assert reply["id"] == 7
                    send_message(sock, {"op": "stats", "id": 8})
                    reply = recv_message(sock)
                    assert reply["type"] == "stats"
                    assert reply["id"] == 8
        finally:
            server.stop()

    def test_one_connection_carries_concurrent_scans(self, config):
        """Acceptance: >= 4 concurrent scans multiplexed over one socket
        connection, each byte-identical to a sequential ``scan()``."""
        server, video = make_server(config)
        reference, _ = make_tasm(config)
        jobs = [
            ("car", None, None),
            ("person", None, None),
            ("sign", None, None),
            ("car", 0, 7),
            ("person", 3, video.frame_count),
        ]
        results: dict[int, object] = {}
        errors: list[BaseException] = []
        try:
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    streams = [
                        client.scan_streaming(video.name, label, start, stop)
                        for label, start, stop in jobs
                    ]
                    in_flight = {stream.query_id for stream in streams}
                    assert len(in_flight) == len(jobs), "each scan needs its own id"

                    def consume(index: int) -> None:
                        try:
                            results[index] = streams[index].result()
                        except BaseException as error:  # noqa: BLE001
                            errors.append(error)

                    workers = [
                        threading.Thread(target=consume, args=(index,))
                        for index in range(len(jobs))
                    ]
                    for worker in workers:
                        worker.start()
                    for worker in workers:
                        worker.join(timeout=60)
                        assert not worker.is_alive(), "a multiplexed scan hung"
        finally:
            server.stop()
        assert not errors, errors
        from repro.core.predicates import TemporalPredicate

        for index, (label, start, stop) in enumerate(jobs):
            temporal = (
                TemporalPredicate.between(start if start is not None else 0, stop)
                if start is not None or stop is not None
                else None
            )
            assert_scan_results_identical(
                results[index], reference.scan(video.name, label, temporal)
            )

    def test_remote_pixels_are_writable_like_in_process(self, config):
        """Remote/in-process parity: a caller may annotate result pixels in
        place, so the transport must hand back writable arrays."""
        server, video = make_server(config)
        try:
            in_process = server.connect().scan(video.name, "car")
            with SocketTransport(server) as transport:
                with RemoteTasmClient(transport.address) as client:
                    remote = client.scan(video.name, "car")
        finally:
            server.stop()
        assert remote.regions, "the parity check needs at least one region"
        for ours, theirs in zip(remote.regions, in_process.regions):
            assert ours.pixels.flags.writeable == theirs.pixels.flags.writeable
            assert ours.pixels.flags.writeable, "remote pixels must be writable"
        remote.regions[0].pixels[0, 0] = 255  # must not raise
