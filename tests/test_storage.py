"""Tests for the tiled-video storage layer (repro.storage)."""

from __future__ import annotations

import pytest

from repro.config import TasmConfig
from repro.errors import StorageError, UnknownVideoError
from repro.storage.catalog import VideoCatalog
from repro.storage.files import TileFileFormatError, read_tiled_video, write_tiled_video
from repro.storage.tiled_video import TiledVideo
from repro.tiles.layout import uniform_layout, untiled_layout
from repro.video.decoder import RegionRequest, VideoDecoder
from repro.video.quality import psnr
from repro.geometry import Rectangle


@pytest.fixture
def tiled(tiny_video, config: TasmConfig) -> TiledVideo:
    return TiledVideo(video=tiny_video, config=config)


class TestTiledVideo:
    def test_initial_state_is_untiled_and_unmaterialised(self, tiled):
        assert tiled.sot_count == 3  # 15 frames / 5-frame SOTs
        assert all(tiled.layout_for(index).is_untiled for index in range(tiled.sot_count))
        assert not tiled.is_materialised(0)
        assert tiled.total_size_bytes() == 0

    def test_lazy_encoding_on_access(self, tiled):
        sot = tiled.encoded_sot(1)
        assert tiled.is_materialised(1)
        assert not tiled.is_materialised(0)
        assert sot.frame_start == 5
        assert sot.frame_stop == 10

    def test_retile_changes_layout_and_records_work(self, tiled, config):
        layout = uniform_layout(tiled.video.width, tiled.video.height, 2, 2, config.codec.block_size)
        record = tiled.retile(0, layout)
        assert tiled.layout_for(0) == layout
        assert record.pixels_encoded == tiled.video.width * tiled.video.height * 5
        assert record.tiles_encoded == 4
        assert record.encode_seconds > 0
        assert tiled.retile_history == [record]

    def test_retile_to_same_layout_is_free(self, tiled):
        layout = untiled_layout(tiled.video.width, tiled.video.height)
        tiled.encoded_sot(0)
        record = tiled.retile(0, layout)
        assert record.bytes_written == 0
        assert record.encode_seconds == 0.0
        assert tiled.retile_history == []

    def test_total_size_with_materialise(self, tiled):
        size = tiled.total_size_bytes(materialise=True)
        assert size > 0
        assert all(tiled.is_materialised(index) for index in range(tiled.sot_count))

    def test_storage_summary(self, tiled):
        tiled.materialise_all()
        summary = tiled.storage_summary()
        assert summary["sot_count"] == 3
        assert 0 < summary["keyframe_bytes"] <= summary["total_bytes"]

    def test_validate_detects_layout_mismatch(self, tiled, config):
        tiled.encoded_sot(0)
        tiled.validate()
        # Corrupt the spec behind the storage layer's back.
        tiled.layout_spec.set_layout(
            0, uniform_layout(tiled.video.width, tiled.video.height, 2, 2, config.codec.block_size)
        )
        with pytest.raises(StorageError):
            tiled.validate()

    def test_sots_for_frames(self, tiled):
        assert tiled.sots_for_frames(0, 6) == [0, 1]
        assert tiled.frame_range(2) == (10, 15)


class TestVideoCatalog:
    def test_ingest_and_get(self, tiny_video, config):
        catalog = VideoCatalog(config)
        tiled = catalog.ingest(tiny_video)
        assert catalog.get(tiny_video.name) is tiled
        assert tiny_video.name in catalog
        assert len(catalog) == 1
        assert catalog.names() == [tiny_video.name]

    def test_duplicate_ingest_rejected(self, tiny_video, config):
        catalog = VideoCatalog(config)
        catalog.ingest(tiny_video)
        with pytest.raises(UnknownVideoError):
            catalog.ingest(tiny_video)

    def test_unknown_video(self, config):
        catalog = VideoCatalog(config)
        with pytest.raises(UnknownVideoError):
            catalog.get("missing")
        with pytest.raises(UnknownVideoError):
            catalog.remove("missing")

    def test_remove(self, tiny_video, config):
        catalog = VideoCatalog(config)
        catalog.ingest(tiny_video)
        catalog.remove(tiny_video.name)
        assert tiny_video.name not in catalog


class TestOnDiskPersistence:
    def test_round_trip(self, tiny_video, config, tmp_path):
        original = TiledVideo(video=tiny_video, config=config)
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, config.codec.block_size)
        original.retile(0, layout)
        original.encoded_sot(1)  # untiled SOT, also persisted

        video_dir = write_tiled_video(original, tmp_path)
        assert (video_dir / "manifest.json").exists()
        assert (video_dir / "frames_0-4" / "tile0.bin").exists()
        assert (video_dir / "frames_0-4" / "tile3.bin").exists()

        restored = read_tiled_video(tiny_video, tmp_path, config)
        assert restored.layout_for(0) == layout
        assert restored.layout_for(1).is_untiled
        assert restored.is_materialised(0)
        assert restored.encoded_sot(0).size_bytes == original.encoded_sot(0).size_bytes

        # The restored tiles decode to the same pixels.
        decoder = VideoDecoder(config.codec)
        region = Rectangle(0, 0, 64, 48)
        from_original = decoder.decode_regions(
            original.encoded_sot(0), [RegionRequest(2, region)]
        ).regions[0].pixels
        from_restored = decoder.decode_regions(
            restored.encoded_sot(0), [RegionRequest(2, region)]
        ).regions[0].pixels
        assert (from_original == from_restored).all()

    def test_unmaterialised_sots_are_skipped(self, tiny_video, config, tmp_path):
        original = TiledVideo(video=tiny_video, config=config)
        original.encoded_sot(0)
        write_tiled_video(original, tmp_path)
        restored = read_tiled_video(tiny_video, tmp_path, config)
        assert restored.is_materialised(0)
        assert not restored.is_materialised(2)

    def test_missing_manifest(self, tiny_video, config, tmp_path):
        with pytest.raises(StorageError):
            read_tiled_video(tiny_video, tmp_path, config)

    def test_corrupt_tile_file_detected(self, tiny_video, config, tmp_path):
        original = TiledVideo(video=tiny_video, config=config)
        original.encoded_sot(0)
        video_dir = write_tiled_video(original, tmp_path)
        tile_path = video_dir / "frames_0-4" / "tile0.bin"
        blob = bytearray(tile_path.read_bytes())
        blob[8:12] = b"XXXX"  # stomp on the magic number of the first chunk
        tile_path.write_bytes(bytes(blob))
        with pytest.raises(TileFileFormatError):
            read_tiled_video(tiny_video, tmp_path, config)

    def test_quality_preserved_through_disk(self, tiny_video, config, tmp_path):
        original = TiledVideo(video=tiny_video, config=config)
        layout = uniform_layout(tiny_video.width, tiny_video.height, 2, 2, config.codec.block_size)
        original.retile(0, layout)
        write_tiled_video(original, tmp_path)
        restored = read_tiled_video(tiny_video, tmp_path, config)
        decoder = VideoDecoder(config.codec)
        result = decoder.decode_full_frames(restored.encoded_sot(0), [0])
        assert psnr(tiny_video.frame(0).pixels, result.regions[0].pixels) > 28.0
