"""Tests for the simulated detectors (repro.detection)."""

from __future__ import annotations

import pytest

from repro.detection import (
    BackgroundSubtractionDetector,
    DetectionResult,
    GroundTruthDetector,
    SimulatedTinyYoloV3,
    SimulatedYoloV3,
)
from repro.detection.base import Detection
from repro.geometry import BoundingBox
from tests.conftest import build_tiny_video


class TestGroundTruthDetector:
    def test_matches_scene_ground_truth(self, tiny_video):
        detector = GroundTruthDetector()
        detections = detector.detect_frame(tiny_video, 0)
        assert detections == tiny_video.ground_truth(0)

    def test_relabel(self, tiny_video):
        detector = GroundTruthDetector(relabel="object")
        assert all(d.label == "object" for d in detector.detect_frame(tiny_video, 0))

    def test_detect_range_every(self, tiny_video):
        detector = GroundTruthDetector(seconds_per_frame=0.5)
        result = detector.detect_range(tiny_video, every=5)
        assert result.frames_processed == 3
        assert result.seconds_spent == pytest.approx(1.5)
        assert {d.frame_index for d in result.detections} == {0, 5, 10}


class TestSimulatedYolo:
    def test_detections_are_deterministic(self, tiny_video):
        detector = SimulatedYoloV3(seed=5)
        first = detector.detect_frame(tiny_video, 3)
        second = SimulatedYoloV3(seed=5).detect_frame(tiny_video, 3)
        assert first == second

    def test_high_recall_on_full_model(self, tiny_video):
        detector = SimulatedYoloV3()
        result = detector.detect_range(tiny_video)
        truth_count = sum(len(tiny_video.ground_truth(f)) for f in range(tiny_video.frame_count))
        assert result.frames_processed == tiny_video.frame_count
        assert len(result.detections) >= 0.8 * truth_count

    def test_boxes_overlap_ground_truth(self, tiny_video):
        detector = SimulatedYoloV3()
        for detection in detector.detect_frame(tiny_video, 4):
            best = max(
                truth.box.iou(detection.box)
                for truth in tiny_video.ground_truth(4)
                if truth.label == detection.label
            )
            assert best > 0.3

    def test_boxes_stay_inside_frame(self, tiny_video):
        detector = SimulatedYoloV3(position_noise=25.0)
        frame_bounds = BoundingBox(0, 0, tiny_video.width, tiny_video.height)
        for frame_index in range(tiny_video.frame_count):
            for detection in detector.detect_frame(tiny_video, frame_index):
                assert frame_bounds.contains(detection.box)

    def test_tiny_model_detects_less_but_runs_faster(self, tiny_video):
        full = SimulatedYoloV3().detect_range(tiny_video)
        tiny = SimulatedTinyYoloV3().detect_range(tiny_video)
        assert len(tiny.detections) < len(full.detections)
        assert tiny.seconds_spent < full.seconds_spent


class TestBackgroundSubtraction:
    def test_reports_generic_foreground_label(self, tiny_video):
        detector = BackgroundSubtractionDetector()
        result = detector.detect_range(tiny_video)
        assert result.detections, "moving objects should be reported as foreground"
        assert {d.label for d in result.detections} == {"foreground"}

    def test_misses_stationary_objects(self, tiny_video):
        detector = BackgroundSubtractionDetector()
        # The 'sign' object never moves; no blob should tightly match it.
        sign_boxes = [d.box for d in tiny_video.ground_truth(5) if d.label == "sign"]
        blobs = detector.detect_frame(tiny_video, 5)
        assert all(blob.box.iou(sign_boxes[0]) < 0.5 for blob in blobs)

    def test_camera_motion_produces_spurious_blobs(self):
        panning = build_tiny_video(name="panning", camera_pan=1.5)
        detector = BackgroundSubtractionDetector()
        blobs = detector.detect_frame(panning, 5)
        frame_area = panning.width * panning.height
        # Spurious blobs cover a large fraction of the frame.
        assert blobs
        assert max(blob.box.area for blob in blobs) > 0.15 * frame_area

    def test_cheaper_than_yolo(self, tiny_video):
        assert (
            BackgroundSubtractionDetector().seconds_per_frame
            < SimulatedTinyYoloV3().seconds_per_frame
            < SimulatedYoloV3().seconds_per_frame
        )


class TestDetectionResult:
    def test_by_frame_grouping(self):
        detections = [
            Detection(0, "car", BoundingBox(0, 0, 5, 5)),
            Detection(0, "person", BoundingBox(5, 5, 8, 8)),
            Detection(2, "car", BoundingBox(1, 1, 4, 4)),
        ]
        result = DetectionResult(detections, frames_processed=3, seconds_spent=0.3)
        grouped = result.by_frame()
        assert set(grouped) == {0, 2}
        assert len(grouped[0]) == 2
        assert result.labels() == {"car", "person"}

    def test_merge(self):
        a = DetectionResult([Detection(0, "car", BoundingBox(0, 0, 1, 1))], 1, 0.1)
        b = DetectionResult([Detection(1, "car", BoundingBox(0, 0, 1, 1))], 2, 0.2)
        merged = DetectionResult.merge([a, b])
        assert len(merged.detections) == 2
        assert merged.frames_processed == 3
        assert merged.seconds_spent == pytest.approx(0.3)
