"""Tests for the edge-camera extension (repro.core.edge)."""

from __future__ import annotations

import pytest

from repro.core.edge import EdgeCamera
from repro.core.tasm import TASM
from repro.detection import (
    BackgroundSubtractionDetector,
    GroundTruthDetector,
    SimulatedYoloV3,
)


@pytest.fixture
def camera(config) -> EdgeCamera:
    return EdgeCamera(detector=GroundTruthDetector(seconds_per_frame=0.01), detect_every=1, config=config)


class TestEdgeProcessing:
    def test_detections_filtered_to_target_objects(self, camera, tiny_video):
        result = camera.process(tiny_video, target_objects={"car"})
        assert result.detections
        assert {d.label for d in result.detections} == {"car"}
        assert result.target_objects == {"car"}

    def test_empty_target_set_keeps_everything(self, camera, tiny_video):
        result = camera.process(tiny_video, target_objects=set())
        assert {d.label for d in result.detections} == {"car", "person", "sign"}

    def test_layouts_cover_sots_with_objects(self, camera, tiny_video):
        result = camera.process(tiny_video, target_objects={"car"})
        # The car is present throughout the video, so every SOT gets a layout.
        assert set(result.layouts) == {0, 1, 2}
        assert all(not layout.is_untiled for layout in result.layouts.values())

    def test_detection_cost_scales_with_sampling(self, config, tiny_video):
        every_frame = EdgeCamera(GroundTruthDetector(seconds_per_frame=0.1), detect_every=1, config=config)
        sampled = EdgeCamera(GroundTruthDetector(seconds_per_frame=0.1), detect_every=5, config=config)
        full_cost = every_frame.process(tiny_video, {"car"}).detection_seconds
        sampled_cost = sampled.process(tiny_video, {"car"}).detection_seconds
        assert sampled_cost < full_cost

    def test_sampled_detection_still_produces_layouts(self, config, tiny_video):
        camera = EdgeCamera(SimulatedYoloV3(), detect_every=5, config=config)
        result = camera.process(tiny_video, target_objects={"car"})
        assert result.layouts, "sampling plus interpolation should still tile the video"
        # Interpolation fills frames between samples.
        frames_with_boxes = {d.frame_index for d in result.detections}
        assert len(frames_with_boxes) > tiny_video.frame_count // 5

    def test_background_subtraction_on_static_camera(self, config, tiny_video):
        camera = EdgeCamera(BackgroundSubtractionDetector(), detect_every=1, config=config)
        result = camera.process(tiny_video, target_objects=set())
        # Blobs carry the generic "foreground" label, so targeting specific
        # classes yields nothing — one of the weaknesses the paper reports.
        targeted = camera.process(tiny_video, target_objects={"car"})
        assert result.detections
        assert targeted.detections == []


class TestIngestIntoTasm:
    def test_pre_tiled_video_and_index_are_loaded(self, camera, config, tiny_video):
        result = camera.process(tiny_video, target_objects={"car"})
        tasm = TASM(config=config)
        camera.ingest_into(tasm, tiny_video, result)
        tiled = tasm.video(tiny_video.name)
        assert not tiled.layout_for(0).is_untiled
        assert tasm.semantic_index.count(tiny_video.name) == len(result.detections)
        # The first query already benefits: fewer pixels than full frames.
        scan = tasm.scan(tiny_video.name, "car")
        untiled_pixels = tiny_video.width * tiny_video.height * tiny_video.frame_count
        assert scan.pixels_decoded < untiled_pixels


class TestUploadPlan:
    def test_only_object_tiles_are_uploaded(self, camera, tiny_video):
        result = camera.process(tiny_video, target_objects={"car"})
        plan = camera.upload_plan(tiny_video, result)
        assert set(plan) == set(result.layouts)
        for sot_index, tile_indices in plan.items():
            layout = result.layouts[sot_index]
            assert len(tile_indices) <= layout.tile_count
            assert all(0 <= index < layout.tile_count for index in tile_indices)
        # At least one SOT should skip at least one tile (that is the point).
        assert any(
            len(plan[sot]) < result.layouts[sot].tile_count for sot in plan
        )

    def test_full_upload_when_streaming_everything(self, config, tiny_video):
        camera = EdgeCamera(
            GroundTruthDetector(), detect_every=1, stream_only_object_tiles=False, config=config
        )
        result = camera.process(tiny_video, target_objects={"car"})
        plan = camera.upload_plan(tiny_video, result)
        for sot_index, tile_indices in plan.items():
            assert list(tile_indices) == list(range(result.layouts[sot_index].tile_count))
