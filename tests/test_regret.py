"""Tests for regret accounting (repro.core.regret)."""

from __future__ import annotations

from repro.core.regret import RegretAccumulator, layout_key


class TestLayoutKey:
    def test_canonical_ordering(self):
        assert layout_key(["person", "car"]) == ("car", "person")
        assert layout_key(("car", "car", "person")) == ("car", "person")
        assert layout_key([]) == ()

    def test_keys_compare_equal_regardless_of_input_order(self):
        assert layout_key(["a", "b"]) == layout_key(["b", "a"])


class TestRegretAccumulator:
    def test_starts_at_zero(self):
        regret = RegretAccumulator()
        entry = regret.ensure_alternative(0, ["car"])
        assert entry.regret == 0.0
        assert entry.observations == 0
        assert regret.regret_of(0, ["car"]) == 0.0

    def test_accumulates_across_queries(self):
        regret = RegretAccumulator()
        regret.accumulate(0, ["car"], 2.0)
        regret.accumulate(0, ["car"], 3.0)
        regret.accumulate(0, ["car"], -1.0)
        entry = regret.ensure_alternative(0, ["car"])
        assert entry.regret == 4.0
        assert entry.observations == 3

    def test_alternatives_are_per_sot(self):
        regret = RegretAccumulator()
        regret.accumulate(0, ["car"], 1.0)
        regret.accumulate(1, ["car"], 5.0)
        assert regret.regret_of(0, ["car"]) == 1.0
        assert regret.regret_of(1, ["car"]) == 5.0
        assert len(regret.alternatives_for(0)) == 1

    def test_best_alternative(self):
        regret = RegretAccumulator()
        regret.accumulate(0, ["car"], 1.0)
        regret.accumulate(0, ["person"], 4.0)
        regret.accumulate(0, ["car", "person"], 3.0)
        best = regret.best_alternative(0)
        assert best is not None
        assert best.objects == ("person",)
        assert regret.best_alternative(5) is None

    def test_exceeding_threshold(self):
        regret = RegretAccumulator()
        regret.accumulate(0, ["car"], 1.0)
        regret.accumulate(0, ["person"], 10.0)
        over = regret.exceeding_threshold(0, 5.0)
        assert [entry.objects for entry in over] == [("person",)]
        assert regret.exceeding_threshold(0, 100.0) == []

    def test_reset_clears_only_that_sot(self):
        regret = RegretAccumulator()
        regret.accumulate(0, ["car"], 1.0)
        regret.accumulate(1, ["car"], 2.0)
        regret.reset(0)
        assert regret.alternatives_for(0) == []
        assert regret.regret_of(1, ["car"]) == 2.0
        assert regret.total_entries() == 1

    def test_negative_regret_tracks_harmful_layouts(self):
        """Layouts that would have slowed queries accumulate negative regret."""
        regret = RegretAccumulator()
        regret.accumulate(0, ["person"], -2.0)
        regret.accumulate(0, ["person"], -1.5)
        assert regret.regret_of(0, ["person"]) == -3.5
        assert regret.exceeding_threshold(0, 0.0) == []
