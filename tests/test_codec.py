"""Tests for the simulated tile codec (repro.video.codec)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CodecConfig
from repro.errors import BitstreamCorruptionError, CodecError
from repro.geometry import Rectangle
from repro.video.codec import DecodeStats, EncodeStats, TileCodec
from repro.video.quality import psnr


@pytest.fixture
def codec(codec_config: CodecConfig) -> TileCodec:
    return TileCodec(codec_config)


def full_region(frames: list[np.ndarray]) -> Rectangle:
    height, width = frames[0].shape
    return Rectangle(0, 0, width, height)


class TestEncodeDecodeRoundTrip:
    def test_round_trip_quality(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0, is_boundary_tile=False)
        decoded = codec.decode_tile(tile)
        assert len(decoded) == len(flat_frames)
        for original, reconstructed in zip(flat_frames, decoded):
            assert reconstructed.shape == original.shape
            assert psnr(original, reconstructed) > 35.0

    def test_boundary_tile_has_lower_quality(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        region = full_region(flat_frames)
        clean = codec.decode_tile(
            codec.encode_tile(flat_frames, region, 0, is_boundary_tile=False)
        )
        degraded = codec.decode_tile(
            codec.encode_tile(flat_frames, region, 0, is_boundary_tile=True)
        )
        clean_psnr = np.mean([psnr(o, d) for o, d in zip(flat_frames, clean)])
        degraded_psnr = np.mean([psnr(o, d) for o, d in zip(flat_frames, degraded)])
        assert degraded_psnr < clean_psnr

    def test_sub_region_encoding(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        region = Rectangle(8, 8, 32, 40)
        tile = codec.encode_tile(flat_frames, region, 0)
        decoded = codec.decode_tile(tile)
        assert decoded[0].shape == (32, 24)

    def test_partial_decode_matches_prefix_of_full_decode(
        self, codec: TileCodec, flat_frames: list[np.ndarray]
    ):
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0, is_boundary_tile=False)
        partial = codec.decode_tile(tile, up_to_offset=3)
        complete = codec.decode_tile(tile)
        assert len(partial) == 4
        for a, b in zip(partial, complete[:4]):
            np.testing.assert_array_equal(a, b)


class TestStorageProperties:
    def test_keyframe_is_larger_than_predicted_frames(self, codec: TileCodec, tiny_video):
        # Use realistic textured frames: on real content intra frames compress
        # far less well than inter residuals, which is the storage property the
        # paper's GOP/SOT-length trade-off rests on.
        frames = [tiny_video.frame(index).pixels for index in range(5)]
        tile = codec.encode_tile(frames, full_region(frames), 0, is_boundary_tile=False)
        keyframe_size = len(tile.payloads[0])
        predicted_sizes = [len(payload) for payload in tile.payloads[1:]]
        assert keyframe_size > max(predicted_sizes)

    def test_size_accounting(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0)
        assert tile.size_bytes == sum(len(p) for p in tile.payloads) + tile.header_bytes
        assert tile.keyframe_bytes == len(tile.payloads[0])

    def test_static_content_compresses_well(self, codec: TileCodec):
        static = [np.full((48, 64), 100, dtype=np.uint8) for _ in range(8)]
        tile = codec.encode_tile(static, full_region(static), 0)
        # Predicted frames of a static scene are nearly empty.
        assert all(len(payload) < len(tile.payloads[0]) for payload in tile.payloads[1:])
        assert tile.size_bytes < static[0].size * len(static)


class TestStatsAccounting:
    def test_encode_stats(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        stats = EncodeStats()
        region = Rectangle(0, 0, 32, 24)
        codec.encode_tile(flat_frames, region, 0, stats=stats)
        assert stats.tiles_encoded == 1
        assert stats.pixels_encoded == 32 * 24 * len(flat_frames)
        assert stats.bytes_written > 0

    def test_decode_stats_full(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        stats = DecodeStats()
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0)
        codec.decode_tile(tile, stats=stats)
        assert stats.tiles_decoded == 1
        assert stats.frames_decoded == len(flat_frames)
        assert stats.pixels_decoded == flat_frames[0].size * len(flat_frames)

    def test_decode_stats_partial(self, codec: TileCodec, flat_frames: list[np.ndarray]):
        stats = DecodeStats()
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0)
        codec.decode_tile(tile, up_to_offset=2, stats=stats)
        assert stats.frames_decoded == 3
        assert stats.pixels_decoded == flat_frames[0].size * 3

    def test_stats_merge(self):
        a = DecodeStats(pixels_decoded=10, tiles_decoded=1, frames_decoded=2)
        b = DecodeStats(pixels_decoded=5, tiles_decoded=2, frames_decoded=3)
        a.merge(b)
        assert (a.pixels_decoded, a.tiles_decoded, a.frames_decoded) == (15, 3, 5)


class TestErrorHandling:
    def test_empty_gop_rejected(self, codec: TileCodec):
        with pytest.raises(CodecError):
            codec.encode_tile([], Rectangle(0, 0, 8, 8), 0)

    def test_region_outside_frame_rejected(self, codec: TileCodec, flat_frames):
        with pytest.raises(CodecError):
            codec.encode_tile(flat_frames, Rectangle(0, 0, 1000, 1000), 0)

    def test_empty_region_rejected(self, codec: TileCodec, flat_frames):
        with pytest.raises(CodecError):
            codec.encode_tile(flat_frames, Rectangle(8, 8, 8, 40), 0)

    def test_mismatched_frame_shapes_rejected(self, codec: TileCodec):
        frames = [np.zeros((16, 16), dtype=np.uint8), np.zeros((8, 8), dtype=np.uint8)]
        with pytest.raises(CodecError):
            codec.encode_tile(frames, Rectangle(0, 0, 16, 16), 0)

    def test_corrupted_payload_detected(self, codec: TileCodec, flat_frames):
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0)
        corrupted_payloads = list(tile.payloads)
        corrupted_payloads[2] = b"garbage" + corrupted_payloads[2][7:]
        corrupted = type(tile)(
            region=tile.region,
            frame_start=tile.frame_start,
            frame_count=tile.frame_count,
            payloads=tuple(corrupted_payloads),
            checksums=tile.checksums,
            header_bytes=tile.header_bytes,
            is_boundary_tile=tile.is_boundary_tile,
        )
        with pytest.raises(BitstreamCorruptionError):
            codec.decode_tile(corrupted)

    def test_decode_offset_out_of_range(self, codec: TileCodec, flat_frames):
        tile = codec.encode_tile(flat_frames, full_region(flat_frames), 0)
        with pytest.raises(CodecError):
            codec.decode_tile(tile, up_to_offset=len(flat_frames))

    def test_encode_gop_requires_regions(self, codec: TileCodec, flat_frames):
        with pytest.raises(CodecError):
            codec.encode_gop(flat_frames, [], gop_index=0, frame_start=0)


class TestEncodedGop:
    def test_tile_lookup_by_region(self, codec: TileCodec, flat_frames):
        regions = [Rectangle(0, 0, 32, 48), Rectangle(32, 0, 64, 48)]
        gop = codec.encode_gop(flat_frames, regions, gop_index=0, frame_start=0)
        assert gop.tile_count == 2
        assert gop.tile_for_region(regions[1]).region == regions[1]
        with pytest.raises(CodecError):
            gop.tile_for_region(Rectangle(0, 0, 1, 1))
        assert gop.size_bytes == sum(tile.size_bytes for tile in gop.tiles)


# ----------------------------------------------------------------------
# Property-based round-trip test
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    frame_count=st.integers(min_value=1, max_value=6),
)
def test_round_trip_is_within_quantisation_error(seed: int, frame_count: int):
    """Reconstructed pixels never drift more than the quantisation steps allow."""
    config = CodecConfig(
        gop_frames=frame_count,
        frame_rate=5,
        block_size=8,
        min_tile_width=16,
        min_tile_height=16,
        boundary_quant_penalty=0,
    )
    codec = TileCodec(config)
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 255, size=(24, 32), dtype=np.uint8)
    frames = [base]
    for _ in range(frame_count - 1):
        drift = rng.integers(-3, 4, size=base.shape)
        frames.append(np.clip(frames[-1].astype(np.int16) + drift, 0, 255).astype(np.uint8))
    tile = codec.encode_tile(frames, Rectangle(0, 0, 32, 24), 0, is_boundary_tile=False)
    decoded = codec.decode_tile(tile)
    # The keyframe is within keyframe_quant; each predicted frame can add at
    # most predicted_quant of additional error.
    tolerance = config.keyframe_quant + config.predicted_quant
    for original, reconstructed in zip(frames, decoded):
        error = np.abs(original.astype(np.int16) - reconstructed.astype(np.int16))
        assert int(error.max()) <= tolerance
